package exec

import (
	"math/rand"
	"testing"

	"repro/internal/paths"
	"repro/internal/relcache"
)

// TestExecutePlanCacheEquivalence pins the cached executor bit-identical
// to the uncached one: a cold pass (empty cache) must match the uncached
// run in relation, result, and stats; a warm pass (same cache again) must
// produce the identical relation via hits.
func TestExecutePlanCacheEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		vertices := 2 + rng.Intn(100)
		labels := 1 + rng.Intn(4)
		edges := 1 + rng.Intn(6*vertices)
		g := randomGraph(int64(trial), vertices, labels, edges)
		for _, density := range []float64{0, 1e-9, 1.0} {
			k := 1 + rng.Intn(4)
			p := make(paths.Path, k)
			for i := range p {
				p[i] = rng.Intn(labels)
			}
			for s := 0; s < k; s++ {
				want, wantSt := ExecutePlan(g, p, Plan{Start: s}, Options{DensityThreshold: density})
				cache := relcache.New(relcache.Options{})
				opt := Options{DensityThreshold: density, Cache: cache}

				cold, coldSt := ExecutePlan(g, p, Plan{Start: s}, opt)
				if !cold.Equal(want) || coldSt.Result != wantSt.Result {
					t.Fatalf("trial %d path %v start %d: cold cached run differs", trial, p, s)
				}
				if coldSt.Work != wantSt.Work || len(coldSt.Intermediates) != len(wantSt.Intermediates) {
					t.Fatalf("trial %d path %v start %d: cold stats differ: work %d vs %d",
						trial, p, s, coldSt.Work, wantSt.Work)
				}
				if coldSt.CacheHits != 0 {
					t.Fatalf("trial %d path %v start %d: cold run hit %d times", trial, p, s, coldSt.CacheHits)
				}
				// Exactly one miss per composed step: the cache is
				// orientation-canonical, so a leftward plan's reversed
				// publishes serve forward consumers without extra entries
				// or extra miss counts.
				if k >= 2 && coldSt.CacheMisses != k-1 {
					t.Fatalf("trial %d path %v start %d: cold run counted %d misses, want %d",
						trial, p, s, coldSt.CacheMisses, k-1)
				}

				warm, warmSt := ExecutePlan(g, p, Plan{Start: s}, opt)
				if !warm.Equal(want) || warmSt.Result != wantSt.Result {
					t.Fatalf("trial %d path %v start %d: warm cached run differs", trial, p, s)
				}
				if k >= 2 {
					// The whole query was published cold, so the warm run
					// takes the fast path: one hit, nothing materialized.
					if warmSt.CacheHits != 1 || warmSt.Work != 0 || len(warmSt.Intermediates) != 0 {
						t.Fatalf("trial %d path %v start %d: warm fast path not taken: %+v",
							trial, p, s, warmSt)
					}
					// Structural identity, not just set equality: every row
					// representation must match the computed relation's.
					for v := 0; v < vertices; v++ {
						if warm.RowDense(v) != want.RowDense(v) || warm.RowCount(v) != want.RowCount(v) {
							t.Fatalf("trial %d path %v start %d: adopted row %d differs structurally",
								trial, p, s, v)
						}
					}
				}
			}
		}
	}
}

// TestExecutePlanCacheCrossPlan checks canonicalization across plans and
// queries: segments cached by one plan are adopted by other plans and
// other queries sharing the label subsequence, and never corrupt results.
func TestExecutePlanCacheCrossPlan(t *testing.T) {
	g := randomGraph(7, 60, 3, 240)
	cache := relcache.New(relcache.Options{})
	opt := Options{Cache: cache}
	queries := []paths.Path{
		{0, 1, 2},
		{1, 2, 0}, // shares subsequence {1,2} with the first
		{0, 1, 2, 0},
		{2, 2},
		{0, 1, 2}, // repeat: full fast path
	}
	for qi, p := range queries {
		for s := 0; s < len(p); s++ {
			want, wantSt := ExecutePlan(g, p, Plan{Start: s}, Options{})
			got, gotSt := ExecutePlan(g, p, Plan{Start: s}, opt)
			if !got.Equal(want) || gotSt.Result != wantSt.Result {
				t.Fatalf("query %d %v start %d: cached run diverged", qi, p, s)
			}
		}
	}
	if cache.Stats().Hits == 0 {
		t.Fatal("workload with shared segments never hit")
	}
}

// TestExecutePlanCacheCrossOrientation pins the orientation-canonical
// payoff at the executor level: a forward plan's published segments must
// serve a backward plan of the same query (and vice versa) as hits — the
// adopter derives the orientation it needs — with results bit-identical
// to the uncached run, and the whole-query entry count stays one.
func TestExecutePlanCacheCrossOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(int64(trial), 2+rng.Intn(90), 1+rng.Intn(3), 1+rng.Intn(400))
		labels := g.NumLabels()
		k := 2 + rng.Intn(3)
		p := make(paths.Path, k)
		for i := range p {
			p[i] = rng.Intn(labels)
		}
		want, _ := ExecutePlan(g, p, Plan{Start: 0}, Options{})
		cache := relcache.New(relcache.Options{})
		opt := Options{Cache: cache}

		// Forward plan publishes; the backward plan wants every segment in
		// the opposite orientation and must adopt anyway.
		ExecutePlan(g, p, Plan{Start: 0}, opt)
		rel, st := ExecutePlan(g, p, Plan{Start: k - 1}, opt)
		if !rel.Equal(want) {
			t.Fatalf("trial %d path %v: backward run over forward-warmed cache diverged", trial, p)
		}
		if st.CacheHits == 0 {
			t.Fatalf("trial %d path %v: backward plan never adopted forward-published segments", trial, p)
		}
		// The whole-query segment is cached exactly once, in whichever
		// orientation landed first — not once per orientation.
		if !cache.Contains(p) {
			t.Fatalf("trial %d path %v: whole-query entry missing after both plans", trial, p)
		}
	}
}

// TestExecutePlanCacheDensityMismatch: entries cached under one density
// regime must not be adopted by executions under another — they are
// treated as misses and recomputed, keeping results bit-identical.
func TestExecutePlanCacheDensityMismatch(t *testing.T) {
	g := randomGraph(11, 80, 2, 400)
	p := paths.Path{0, 1, 0}
	cache := relcache.New(relcache.Options{})
	ExecutePlan(g, p, Plan{Start: 0}, Options{DensityThreshold: 1.0, Cache: cache})
	want, _ := ExecutePlan(g, p, Plan{Start: 0}, Options{DensityThreshold: 1e-9})
	got, st := ExecutePlan(g, p, Plan{Start: 0}, Options{DensityThreshold: 1e-9, Cache: cache})
	if st.CacheHits != 0 {
		t.Fatalf("adopted %d entries across density regimes", st.CacheHits)
	}
	if !got.Equal(want) {
		t.Fatal("density-mismatched cache corrupted the result")
	}
	for v := 0; v < 80; v++ {
		if got.RowDense(v) != want.RowDense(v) {
			t.Fatalf("row %d representation leaked across regimes", v)
		}
	}
}

// TestExecuteTreeCacheEquivalence pins cached bushy execution: every tree
// shape over length-4 queries, cold and warm, at workers 1 and 4, matches
// the uncached run's relation and result.
func TestExecuteTreeCacheEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(int64(100+trial), 2+rng.Intn(80), 1+rng.Intn(3), 1+rng.Intn(300))
		labels := g.NumLabels()
		p := make(paths.Path, 4)
		for i := range p {
			p[i] = rng.Intn(labels)
		}
		for _, tree := range enumerateTestTrees(0, len(p)) {
			want, wantSt := ExecuteTree(g, p, tree, Options{})
			cache := relcache.New(relcache.Options{})
			for _, workers := range []int{1, 4} {
				opt := Options{Workers: workers, Cache: cache}
				rel, st := ExecuteTree(g, p, tree, opt)
				if !rel.Equal(want) || st.Result != wantSt.Result {
					t.Fatalf("trial %d tree %s workers %d: cached tree run diverged",
						trial, tree.Describe(len(p)), workers)
				}
			}
			// Second pass on the warm cache: join nodes adopt whole
			// segments.
			rel, st := ExecuteTree(g, p, tree, Options{Cache: cache})
			if !rel.Equal(want) || st.Result != wantSt.Result {
				t.Fatalf("trial %d tree %s: warm tree run diverged", trial, tree.Describe(len(p)))
			}
			if st.CacheHits == 0 {
				t.Fatalf("trial %d tree %s: warm tree run never hit", trial, tree.Describe(len(p)))
			}
		}
	}
}

// enumerateTestTrees mirrors the experiments' tree enumeration for the
// equivalence suite.
func enumerateTestTrees(lo, hi int) []*PlanTree {
	var out []*PlanTree
	for s := lo; s < hi; s++ {
		out = append(out, &PlanTree{Lo: lo, Hi: hi, Start: s})
	}
	for m := lo + 1; m < hi; m++ {
		for _, l := range enumerateTestTrees(lo, m) {
			for _, r := range enumerateTestTrees(m, hi) {
				out = append(out, &PlanTree{Lo: lo, Hi: hi, Start: -1, Left: l, Right: r})
			}
		}
	}
	return out
}

// constEstimator estimates every segment at a fixed volume — enough to
// make the cache-aware DP's arithmetic checkable by hand.
func constEstimator(v float64) Estimator {
	return EstimatorFunc(func(paths.Path) float64 { return v })
}

// TestCostTreeCacheAware: with every segment estimated at 10, a length-4
// query costs 30 under any zig-zag plan and 40 under the best bushy
// split, so linear wins cold. Marking the two halves cached zeroes their
// build cost, making the balanced join (0+0+10+10 = 20) the winner —
// the PR-4 "bushy never wins" outcome flips exactly when segments are
// reusable.
func TestCostTreeCacheAware(t *testing.T) {
	p := paths.Path{0, 1, 2, 3}
	cold := Planner{Est: constEstimator(10)}
	tree, cost := cold.ChooseTreeWithCost(p)
	if !tree.IsLeaf() || cost != 30 {
		t.Fatalf("cold planner chose %s at %v, want linear at 30", tree.Describe(4), cost)
	}
	warm := Planner{Est: constEstimator(10), Cached: func(seg paths.Path) bool {
		return len(seg) == 2
	}}
	tree, cost = warm.ChooseTreeWithCost(p)
	if tree.IsLeaf() || cost != 20 {
		t.Fatalf("warm planner chose %s at %v, want balanced join at 20", tree.Describe(4), cost)
	}
	if tree.Left.Hi != 2 {
		t.Fatalf("warm planner split at %d, want 2", tree.Left.Hi)
	}
	// A fully cached query is a free leaf — the fast path beats any join.
	full := Planner{Est: constEstimator(10), Cached: func(paths.Path) bool { return true }}
	tree, cost = full.ChooseTreeWithCost(p)
	if !tree.IsLeaf() || cost != 0 {
		t.Fatalf("fully cached planner chose %s at %v, want free leaf", tree.Describe(4), cost)
	}
}

// TestExecuteTreeCacheAwarePlansMatch runs the planner's cache-aware
// choice end to end on a real graph: whatever tree the warm DP picks,
// executing it with the warm cache yields the same relation as the cold
// linear plan.
func TestExecuteTreeCacheAwarePlansMatch(t *testing.T) {
	g := randomGraph(13, 90, 3, 500)
	p := paths.Path{0, 1, 2, 0}
	cache := relcache.New(relcache.Options{})
	opt := Options{Cache: cache}
	want, _ := ExecutePlan(g, p, Plan{Start: 0}, Options{})

	// Warm the halves the way a workload would: execute them as queries.
	ExecutePlan(g, p[:2], Plan{Start: 0}, opt)
	ExecutePlan(g, p[2:], Plan{Start: 0}, opt)

	pl := Planner{
		Est:    EstimatorFunc(func(seg paths.Path) float64 { return float64(len(seg) * 100) }),
		Cached: func(seg paths.Path) bool { return cache.Contains(seg) },
	}
	tree := pl.ChooseTree(p)
	if tree.IsLeaf() {
		t.Fatalf("warm cache did not flip the plan bushy: %s", tree.Describe(len(p)))
	}
	rel, st := ExecuteTree(g, p, tree, opt)
	if !rel.Equal(want) {
		t.Fatal("cache-aware bushy plan produced a different relation")
	}
	if st.CacheHits == 0 {
		t.Fatal("cache-aware bushy plan never adopted the warmed halves")
	}
}
