package exec

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/paths"
)

// TestExecutorsDegenerateGraphs runs every executor entry point — the
// dense reference, every zig-zag plan, and every bushy tree shape — on
// the degenerate graphs that historically break join loops: a graph with
// no edges at all, a single vertex with no edges, and a single vertex
// with self-loops on every label. Each hybrid execution runs at workers 1
// and 4, and everything must agree on an empty (or single-pair) result.
func TestExecutorsDegenerateGraphs(t *testing.T) {
	build := func(vertices, labels int, loops bool) *graph.CSR {
		g := graph.New(vertices, labels)
		if loops {
			for l := 0; l < labels; l++ {
				g.AddEdge(0, l, 0)
			}
		}
		return g.Freeze()
	}
	graphs := []struct {
		name string
		g    *graph.CSR
	}{
		{"empty-20v", build(20, 3, false)},
		{"single-vertex", build(1, 3, false)},
		{"single-vertex-loops", build(1, 3, true)},
	}
	for _, tc := range graphs {
		labels := tc.g.NumLabels()
		for k := 1; k <= 3; k++ {
			p := make(paths.Path, k)
			for i := range p {
				p[i] = i % labels
			}
			dref, dst := ExecuteDense(tc.g, p, Forward)
			dbwd, _ := ExecuteDense(tc.g, p, Backward)
			if !dbwd.Equal(dref) {
				t.Fatalf("%s k=%d: dense forward and backward disagree", tc.name, k)
			}
			for _, workers := range []int{1, 4} {
				opt := Options{Workers: workers}
				for s := 0; s < k; s++ {
					ctx := fmt.Sprintf("%s k=%d start=%d workers=%d", tc.name, k, s, workers)
					rel, st := ExecutePlan(tc.g, p, Plan{Start: s}, opt)
					if !rel.EqualRelation(dref) || st.Result != dst.Result {
						t.Fatalf("%s: zig-zag diverged from dense", ctx)
					}
				}
				for ti, tree := range allTrees(0, k) {
					ctx := fmt.Sprintf("%s k=%d tree=%d workers=%d", tc.name, k, ti, workers)
					rel, st := ExecuteTree(tc.g, p, tree, opt)
					if !rel.EqualRelation(dref) || st.Result != dst.Result {
						t.Fatalf("%s: bushy diverged from dense", ctx)
					}
				}
			}
		}
	}
}
