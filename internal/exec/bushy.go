package exec

import (
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/sched"
)

// MaxTreeLength bounds the bushy planner's dynamic program. The DP
// enumerates all O(k²) segments of a length-k query and all O(k) splits
// and zig-zag starts per segment — O(k³) estimator calls overall — which
// is trivial at the census-bounded path lengths (k ≤ 6 in the paper) but
// deserves a hard edge: beyond this bound ChooseTree and CostTree fall
// back to the linear zig-zag space, which is O(k²).
const MaxTreeLength = 16

// PlanTree is a join plan for a path query segment p[Lo:Hi): either a
// leaf — the segment is built linearly with the zig-zag plan starting at
// label position Start — or a bushy join node, whose two children build
// p[Lo:Mid) and p[Mid:Hi) independently and whose own step joins the two
// finished relations with the relation×relation kernel
// (bitset.JoinInto). Leaves generalize the whole zig-zag space: a leaf
// spanning the full query is exactly a Plan. Join nodes are what zig-zag
// cannot express — both join inputs are materialized interior segments,
// so interior-segment selectivity estimates decide the plan's cost.
type PlanTree struct {
	// Lo, Hi delimit the query segment [Lo, Hi) this subtree builds.
	Lo, Hi int
	// Start is the absolute label position a leaf's zig-zag grows from,
	// in [Lo, Hi). Join nodes carry −1.
	Start int
	// Left and Right are the two children of a join node (both nil for a
	// leaf, both non-nil otherwise); Left builds [Lo, Left.Hi) and Right
	// builds [Left.Hi, Hi).
	Left, Right *PlanTree
}

// IsLeaf reports whether the node builds its segment linearly.
func (t *PlanTree) IsLeaf() bool { return t.Left == nil }

// Leaves returns the number of leaf segments; 1 means the tree is a plain
// zig-zag plan.
func (t *PlanTree) Leaves() int {
	if t.IsLeaf() {
		return 1
	}
	return t.Left.Leaves() + t.Right.Leaves()
}

// Describe renders the tree for a length-k query. A leaf spanning the
// whole query renders as its zig-zag plan name ("forward", "backward",
// "zigzag@i"); interior leaves render as "[lo,hi)@start" and join nodes
// as "(left ⋈ right)".
func (t *PlanTree) Describe(k int) string {
	if t.IsLeaf() {
		if t.Lo == 0 && t.Hi == k {
			return Plan{Start: t.Start}.Describe(k)
		}
		return fmt.Sprintf("[%d,%d)@%d", t.Lo, t.Hi, t.Start)
	}
	return "(" + t.Left.Describe(k) + " ⋈ " + t.Right.Describe(k) + ")"
}

// validate panics unless the tree is a well-formed plan for segment
// [lo, hi): spans nest exactly, leaf starts are in range, and join nodes
// have both children.
func (t *PlanTree) validate(lo, hi int) {
	if t == nil {
		panic("exec: nil plan tree node")
	}
	if t.Lo != lo || t.Hi != hi {
		panic(fmt.Sprintf("exec: plan tree node spans [%d,%d), expected [%d,%d)", t.Lo, t.Hi, lo, hi))
	}
	if t.IsLeaf() {
		if t.Right != nil {
			panic("exec: plan tree node with exactly one child")
		}
		if t.Start < lo || t.Start >= hi {
			panic(fmt.Sprintf("exec: leaf start %d out of segment [%d,%d)", t.Start, lo, hi))
		}
		return
	}
	if t.Right == nil {
		panic("exec: plan tree node with exactly one child")
	}
	m := t.Left.Hi
	if m <= lo || m >= hi {
		panic(fmt.Sprintf("exec: plan tree split %d out of segment (%d,%d)", m, lo, hi))
	}
	t.Left.validate(lo, m)
	t.Right.validate(m, hi)
}

// treeCell is one DP-table entry: the best estimated cost of building
// segment [i, j), and how — split < 0 means a linear leaf with the given
// absolute zig-zag start; otherwise a bushy join at the split position.
type treeCell struct {
	cost  float64
	split int
	start int
}

// treeDP fills the segment table for p: dp[i][j] is the best plan for
// p[i:j). Cost model: a leaf's cost is its zig-zag PlanCost (the sum of
// estimated intermediate-segment selectivities); a join node adds both
// children's costs plus both children's full-segment estimates, because a
// bushy join materializes and consumes both inputs (whereas a zig-zag
// step's right-hand side is a free CSR operand — which is why linear
// growth wins whenever one side is a single label). Ties break
// deterministically: the leaf beats any equal-cost join (falling back to
// zig-zag when linear wins), and among equal splits or starts the lowest
// index wins.
func (pl Planner) treeDP(p paths.Path) [][]treeCell {
	k := len(p)
	dp := make([][]treeCell, k)
	for i := range dp {
		dp[i] = make([]treeCell, k+1)
		dp[i][i+1] = treeCell{cost: 0, split: -1, start: i}
	}
	for length := 2; length <= k; length++ {
		for i := 0; i+length <= k; i++ {
			j := i + length
			seg := p[i:j]
			costs := pl.Costs(seg)
			leaf := CheapestPlan(costs)
			best := treeCell{cost: costs[leaf.Start], split: -1, start: i + leaf.Start}
			if pl.Cached != nil && pl.Cached(seg) {
				// The segment's finished relation is already cached:
				// the executor adopts it whole (the whole-segment fast
				// path), so building it costs nothing. The segment still
				// contributes its estimated size wherever a parent join
				// consumes it — adoption is free, scanning is not.
				best.cost = 0
			}
			for m := i + 1; m < j; m++ {
				c := dp[i][m].cost + dp[m][j].cost +
					pl.Est.Estimate(p[i:m]) + pl.Est.Estimate(p[m:j])
				if c < best.cost {
					best = treeCell{cost: c, split: m, start: -1}
				}
			}
			dp[i][j] = best
		}
	}
	return dp
}

// buildTree materializes the DP table's winning plan for segment [i, j).
func buildTree(dp [][]treeCell, i, j int) *PlanTree {
	c := dp[i][j]
	if c.split < 0 {
		return &PlanTree{Lo: i, Hi: j, Start: c.start}
	}
	return &PlanTree{
		Lo: i, Hi: j, Start: -1,
		Left:  buildTree(dp, i, c.split),
		Right: buildTree(dp, c.split, j),
	}
}

// CostTree returns the estimated intermediate volume of the best plan
// tree for p — the bushy analogue of PlanCost∘ChoosePlan. With an exact
// estimator it equals ExecuteTree's Stats.Work for the chosen tree.
// Beyond MaxTreeLength it falls back to the best zig-zag plan's cost. It
// panics on an empty path.
func (pl Planner) CostTree(p paths.Path) float64 {
	_, cost := pl.ChooseTreeWithCost(p)
	return cost
}

// ChooseTree returns the cheapest plan tree for p, searching the bushy
// space (every way to split the query into independently built segments
// joined pairwise) on top of the linear zig-zag space. When no bushy
// decomposition is estimated to beat the best zig-zag plan the result is
// a single leaf — the planner falls back to linear execution, and
// ExecuteTree delegates to ExecutePlan. Beyond MaxTreeLength the bushy
// space is not enumerated at all. It panics on an empty path.
func (pl Planner) ChooseTree(p paths.Path) *PlanTree {
	tree, _ := pl.ChooseTreeWithCost(p)
	return tree
}

// ChooseTreeWithCost is ChooseTree plus the winning tree's estimated
// cost, from a single dynamic program — callers that need both (the
// pathsel planner does, per query) avoid filling the O(k²) table twice.
func (pl Planner) ChooseTreeWithCost(p paths.Path) (*PlanTree, float64) {
	k := len(p)
	if k == 0 {
		panic("exec: plan for empty path query")
	}
	if k > MaxTreeLength {
		start := pl.ChoosePlan(p).Start
		return &PlanTree{Lo: 0, Hi: k, Start: start}, pl.PlanCost(p, start)
	}
	dp := pl.treeDP(p)
	return buildTree(dp, 0, k), dp[0][k].cost
}

// treeExec carries one ExecuteTree call's invariants through the
// recursion.
type treeExec struct {
	g   *graph.CSR
	p   paths.Path
	opt Options

	// mu guards sched: sibling subtrees run concurrently and both fold
	// their scheduler counters into the shared aggregate.
	mu    sync.Mutex
	sched SchedStats
}

// addSched folds a subtree execution's scheduler stats into the tree-wide
// aggregate. Safe from concurrently running sibling subtrees.
func (tx *treeExec) addSched(s SchedStats) {
	tx.mu.Lock()
	tx.sched.merge(s)
	tx.mu.Unlock()
}

// run executes the subtree with the given worker budget and returns the
// segment's relation, the intermediate sizes it materialized along the
// way (in deterministic post-order: left subtree's, right subtree's,
// then — for join nodes — the two join inputs themselves), and the
// subtree's segment-cache hit/miss counts. A join node whose whole
// segment is already cached adopts it without building either child —
// this is how a warm cache gives bushy plans their leaf inputs, and
// whole subtrees, for free.
//
// On error every relation the subtree materialized has been released
// back to the options' pool; a failing child cancels the shared
// canceller, so its concurrently building sibling aborts too instead of
// running to completion against a dead query.
func (tx *treeExec) run(t *PlanTree, workers int) (*bitset.HybridRelation, []int64, int, int, error) {
	if t.IsLeaf() {
		opt := tx.opt
		opt.Workers = workers
		rel, st, err := ExecutePlanChecked(tx.g, tx.p[t.Lo:t.Hi], Plan{Start: t.Start - t.Lo}, opt)
		tx.addSched(st.Sched)
		return rel, st.Intermediates, st.CacheHits, st.CacheMisses, err
	}
	n := tx.g.NumVertices()
	seg := tx.p[t.Lo:t.Hi]
	if err := tx.opt.Cancel.Err(); err != nil {
		return nil, nil, 0, 0, err
	}
	sc := newSegCache(tx.opt.Cache, n, tx.opt.DensityThreshold)
	if sc != nil {
		dst := getRel(tx.opt.Pool, n, tx.opt.DensityThreshold)
		if sc.adopt(seg, false, dst) {
			if err := tx.opt.checkBudget(dst); err != nil {
				putRel(tx.opt.Pool, dst)
				return nil, nil, 0, 0, err
			}
			return dst, nil, 1, 0, nil
		}
		putRel(tx.opt.Pool, dst)
	}
	// The two segments are independent: split the worker budget and build
	// them concurrently. Each child drives its own scheduler, so the two
	// builds share nothing but the read-only graph, the thread-safe
	// cache, pool, and canceller; adoption is bit-identical to
	// recomputation, so their outputs — and therefore the join below —
	// are unaffected by timing.
	var (
		lrel, rrel *bitset.HybridRelation
		li, ri     []int64
		lh, lm     int
		rh, rm     int
		lerr, rerr error
	)
	if workers > 1 {
		lw := (workers + 1) / 2
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The subtree runs on this raw goroutine, not a scheduler
			// worker, so a panic at a join-node boundary must be contained
			// here or it crashes the process.
			lerr = containPanics(func() (err error) {
				lrel, li, lh, lm, err = tx.run(t.Left, lw)
				return err
			})
			if lerr != nil {
				tx.opt.Cancel.CancelIfSet(lerr)
			}
		}()
		rrel, ri, rh, rm, rerr = tx.run(t.Right, workers-lw)
		if rerr != nil {
			tx.opt.Cancel.CancelIfSet(rerr)
		}
		wg.Wait()
	} else {
		lrel, li, lh, lm, lerr = tx.run(t.Left, 1)
		if lerr == nil {
			rrel, ri, rh, rm, rerr = tx.run(t.Right, 1)
		}
	}
	if lerr != nil || rerr != nil {
		putRel(tx.opt.Pool, lrel)
		putRel(tx.opt.Pool, rrel)
		if lerr != nil {
			return nil, nil, 0, 0, lerr
		}
		return nil, nil, 0, 0, rerr
	}
	ints := append(li, ri...)
	ints = append(ints, lrel.Pairs(), rrel.Pairs())
	dst := getRel(tx.opt.Pool, n, tx.opt.DensityThreshold)
	stp := newStepper(n, workers)
	stp.setCancel(tx.opt.Cancel.Flag())
	faultinject.Fire("exec.step")
	joinFail := func(err error) (*bitset.HybridRelation, []int64, int, int, error) {
		putRel(tx.opt.Pool, lrel)
		putRel(tx.opt.Pool, rrel)
		putRel(tx.opt.Pool, dst)
		return nil, nil, 0, 0, err
	}
	if err := tx.opt.Cancel.Err(); err != nil {
		return joinFail(err)
	}
	err := stp.join(lrel, dst, rrel)
	var js SchedStats
	js.add(stp.counters())
	tx.addSched(js)
	if err != nil {
		return joinFail(err)
	}
	if err := tx.opt.Cancel.Err(); err != nil {
		return joinFail(err) // partial join output: discard, never cache
	}
	// Publish the joined segment in forward orientation: a later zig-zag
	// over the same labels, a repeat of this subtree, or the whole-query
	// fast path can all adopt it.
	sc.put(seg, false, dst)
	putRel(tx.opt.Pool, lrel)
	putRel(tx.opt.Pool, rrel)
	if err := tx.opt.checkBudget(dst); err != nil {
		putRel(tx.opt.Pool, dst)
		return nil, nil, 0, 0, err
	}
	hits, misses := sc.counters()
	return dst, ints, lh + rh + hits, lm + rm + misses, nil
}

// ExecuteTree evaluates p over g with the given plan tree: leaves run as
// zig-zag plans on the hybrid substrate, and every join node builds its
// two segments independently — in parallel when the worker budget allows,
// each child on its own scheduler — then joins them with the sharded
// relation×relation kernel. The merge discipline of every sharded step is
// deterministic, so the result is bit-identical to sequential execution
// (and to ExecutePlan and ExecuteDense) at every worker count.
//
// Stats.Work counts every relation fed into a join step: for leaves the
// usual zig-zag intermediates, and for join nodes both finished segment
// relations — matching CostTree's model, so an exact estimator makes
// CostTree equal the executed Work. A single-leaf tree delegates to
// ExecutePlan. It panics on an empty path or a malformed tree.
func ExecuteTree(g *graph.CSR, p paths.Path, tree *PlanTree, opt Options) (*bitset.HybridRelation, Stats) {
	rel, st, err := ExecuteTreeChecked(g, p, tree, opt)
	if err != nil {
		// Legacy callers pass no canceller or budget, so the only way
		// here is a contained worker panic — re-raise it on the caller.
		panic(fmt.Sprintf("exec: unchecked execution failed: %v", err))
	}
	return rel, st
}

// ExecuteTreeChecked is ExecuteTree with the checked contract of
// ExecutePlanChecked: cancellation and deadline checks at every join
// boundary (a failing subtree cancels its concurrently building
// sibling), budget enforcement on every materialized segment, contained
// worker panics as typed errors, and every pooled relation released on
// abort. A join-node execution with no caller canceller gets a private
// one, so failure containment between sibling subtrees works even when
// the caller never intends to cancel.
func ExecuteTreeChecked(g *graph.CSR, p paths.Path, tree *PlanTree, opt Options) (*bitset.HybridRelation, Stats, error) {
	k := len(p)
	if k == 0 {
		panic("exec: empty path query")
	}
	tree.validate(0, k)
	if tree.IsLeaf() {
		rel, st, err := ExecutePlanChecked(g, p, Plan{Start: tree.Start}, opt)
		st.Tree = tree
		return rel, st, err
	}
	if opt.Cancel == nil {
		opt.Cancel = &Canceller{}
	}
	tx := &treeExec{g: g, p: p, opt: opt}
	// Preconditions (empty path, malformed tree) have panicked above;
	// from here a caller-goroutine panic anywhere in the recursion is
	// contained as a typed error, mirroring ExecutePlanChecked.
	var (
		rel          *bitset.HybridRelation
		ints         []int64
		hits, misses int
	)
	err := containPanics(func() (e error) {
		rel, ints, hits, misses, e = tx.run(tree, sched.WorkerCount(opt.Workers))
		return e
	})
	st := Stats{Plan: Plan{Start: -1}, Tree: tree, Intermediates: ints,
		CacheHits: hits, CacheMisses: misses, Sched: tx.sched}
	if err != nil {
		return nil, st, err
	}
	st.Result = rel.Pairs()
	for _, v := range ints {
		st.Work += v
	}
	return rel, st, nil
}
