package exec

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/paths"
)

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	return dataset.ErdosRenyi(60, 400, dataset.NewZipfLabels(3, 1.1), 17).Freeze()
}

func TestExecuteDirectionsAgree(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(4)
		p := make(paths.Path, n)
		for i := range p {
			p[i] = rng.Intn(3)
		}
		fwd, fst := Execute(g, p, Forward)
		bwd, bst := Execute(g, p, Backward)
		if !fwd.Equal(bwd) {
			t.Fatalf("path %v: forward and backward results differ", p)
		}
		if fst.Result != bst.Result {
			t.Fatalf("path %v: result counts differ %d vs %d", p, fst.Result, bst.Result)
		}
		if fst.Result != paths.Selectivity(g, p) {
			t.Fatalf("path %v: result %d != selectivity %d", p, fst.Result, paths.Selectivity(g, p))
		}
	}
}

func TestExecuteIntermediatesAreSelectivities(t *testing.T) {
	g := testGraph(t)
	p := paths.Path{0, 1, 2}
	_, fst := Execute(g, p, Forward)
	if len(fst.Intermediates) != 2 {
		t.Fatalf("forward intermediates = %v", fst.Intermediates)
	}
	if fst.Intermediates[0] != paths.Selectivity(g, p[:1]) {
		t.Fatal("first forward intermediate should be f(l1)")
	}
	if fst.Intermediates[1] != paths.Selectivity(g, p[:2]) {
		t.Fatal("second forward intermediate should be f(l1/l2)")
	}
	_, bst := Execute(g, p, Backward)
	if bst.Intermediates[0] != paths.Selectivity(g, p[2:]) {
		t.Fatal("first backward intermediate should be f(l3)")
	}
	if bst.Intermediates[1] != paths.Selectivity(g, p[1:]) {
		t.Fatal("second backward intermediate should be f(l2/l3)")
	}
	if fst.Work != fst.Intermediates[0]+fst.Intermediates[1] {
		t.Fatal("work must sum intermediates")
	}
}

func TestExecuteSingleLabel(t *testing.T) {
	g := testGraph(t)
	_, st := Execute(g, paths.Path{1}, Backward)
	if len(st.Intermediates) != 0 || st.Work != 0 {
		t.Fatal("single-label query has no intermediates")
	}
	if st.Result != paths.Selectivity(g, paths.Path{1}) {
		t.Fatal("single-label result wrong")
	}
}

func TestExecutePanics(t *testing.T) {
	g := testGraph(t)
	for name, fn := range map[string]func(){
		"empty path":    func() { Execute(g, paths.Path{}, Forward) },
		"bad direction": func() { Execute(g, paths.Path{0}, Direction(7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("direction names wrong")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatal("unknown direction name wrong")
	}
}

func TestPlannerCostsFromExactEstimates(t *testing.T) {
	g := testGraph(t)
	c := paths.NewCensus(g, 3)
	pl := Planner{Est: EstimatorFunc(func(p paths.Path) float64 {
		return float64(c.Selectivity(p))
	})}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p := paths.Path{rng.Intn(3), rng.Intn(3), rng.Intn(3)}
		// With exact estimates, the planner's costs equal the actual works.
		_, fst := Execute(g, p, Forward)
		_, bst := Execute(g, p, Backward)
		if got := pl.Cost(p, Forward); got != float64(fst.Work) {
			t.Fatalf("forward cost %v != actual work %d", got, fst.Work)
		}
		if got := pl.Cost(p, Backward); got != float64(bst.Work) {
			t.Fatalf("backward cost %v != actual work %d", got, bst.Work)
		}
		// Therefore the chosen direction is the cheaper one.
		chosen := pl.Choose(p)
		_, cst := Execute(g, p, chosen)
		other := Forward
		if chosen == Forward {
			other = Backward
		}
		_, ost := Execute(g, p, other)
		if cst.Work > ost.Work {
			t.Fatalf("exact-estimate planner chose the costlier direction for %v", p)
		}
	}
}

func TestPlannerTieGoesForward(t *testing.T) {
	pl := Planner{Est: EstimatorFunc(func(paths.Path) float64 { return 1 })}
	if pl.Choose(paths.Path{0, 1}) != Forward {
		t.Fatal("ties should go forward")
	}
}
