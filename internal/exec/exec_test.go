package exec

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/paths"
)

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	return dataset.ErdosRenyi(60, 400, dataset.NewZipfLabels(3, 1.1), 17).Freeze()
}

func TestExecuteDirectionsAgree(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(4)
		p := make(paths.Path, n)
		for i := range p {
			p[i] = rng.Intn(3)
		}
		fwd, fst := Execute(g, p, Forward)
		bwd, bst := Execute(g, p, Backward)
		if !fwd.Equal(bwd) {
			t.Fatalf("path %v: forward and backward results differ", p)
		}
		if fst.Result != bst.Result {
			t.Fatalf("path %v: result counts differ %d vs %d", p, fst.Result, bst.Result)
		}
		if fst.Result != paths.Selectivity(g, p) {
			t.Fatalf("path %v: result %d != selectivity %d", p, fst.Result, paths.Selectivity(g, p))
		}
	}
}

func TestExecuteAllPlansAgree(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4)
		p := make(paths.Path, n)
		for i := range p {
			p[i] = rng.Intn(3)
		}
		ref, rst := ExecutePlan(g, p, Plan{Start: 0}, Options{})
		for s := 1; s < n; s++ {
			rel, st := ExecutePlan(g, p, Plan{Start: s}, Options{})
			if !rel.Equal(ref) {
				t.Fatalf("path %v: plan start %d result differs from forward", p, s)
			}
			if st.Result != rst.Result {
				t.Fatalf("path %v: plan start %d result count %d != %d", p, s, st.Result, rst.Result)
			}
			if len(st.Intermediates) != n-1 {
				t.Fatalf("path %v: plan start %d has %d intermediates, want %d",
					p, s, len(st.Intermediates), n-1)
			}
		}
	}
}

func TestExecuteIntermediatesAreSelectivities(t *testing.T) {
	g := testGraph(t)
	p := paths.Path{0, 1, 2}
	_, fst := Execute(g, p, Forward)
	if len(fst.Intermediates) != 2 {
		t.Fatalf("forward intermediates = %v", fst.Intermediates)
	}
	if fst.Intermediates[0] != paths.Selectivity(g, p[:1]) {
		t.Fatal("first forward intermediate should be f(l1)")
	}
	if fst.Intermediates[1] != paths.Selectivity(g, p[:2]) {
		t.Fatal("second forward intermediate should be f(l1/l2)")
	}
	_, bst := Execute(g, p, Backward)
	if bst.Intermediates[0] != paths.Selectivity(g, p[2:]) {
		t.Fatal("first backward intermediate should be f(l3)")
	}
	if bst.Intermediates[1] != paths.Selectivity(g, p[1:]) {
		t.Fatal("second backward intermediate should be f(l2/l3)")
	}
	if fst.Work != fst.Intermediates[0]+fst.Intermediates[1] {
		t.Fatal("work must sum intermediates")
	}
	// A zig-zag start at 1 materializes f(l2), then f(l2/l3), then prepends.
	_, zst := ExecutePlan(g, p, Plan{Start: 1}, Options{})
	if zst.Intermediates[0] != paths.Selectivity(g, p[1:2]) {
		t.Fatal("first zig-zag intermediate should be f(l2)")
	}
	if zst.Intermediates[1] != paths.Selectivity(g, p[1:]) {
		t.Fatal("second zig-zag intermediate should be f(l2/l3)")
	}
}

func TestExecuteSingleLabel(t *testing.T) {
	g := testGraph(t)
	_, st := Execute(g, paths.Path{1}, Backward)
	if len(st.Intermediates) != 0 || st.Work != 0 {
		t.Fatal("single-label query has no intermediates")
	}
	if st.Result != paths.Selectivity(g, paths.Path{1}) {
		t.Fatal("single-label result wrong")
	}
}

func TestExecutePanics(t *testing.T) {
	g := testGraph(t)
	for name, fn := range map[string]func(){
		"empty path":        func() { Execute(g, paths.Path{}, Forward) },
		"bad direction":     func() { Execute(g, paths.Path{0}, Direction(7)) },
		"empty plan":        func() { ExecutePlan(g, paths.Path{}, Plan{}, Options{}) },
		"plan start low":    func() { ExecutePlan(g, paths.Path{0, 1}, Plan{Start: -1}, Options{}) },
		"plan start high":   func() { ExecutePlan(g, paths.Path{0, 1}, Plan{Start: 2}, Options{}) },
		"cost empty":        func() { Planner{}.PlanCost(paths.Path{}, 0) },
		"cost start range":  func() { Planner{}.PlanCost(paths.Path{0}, 1) },
		"choose empty plan": func() { Planner{}.ChoosePlan(paths.Path{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDirectionString(t *testing.T) {
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Fatal("direction names wrong")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatal("unknown direction name wrong")
	}
}

func TestPlanDescribe(t *testing.T) {
	if (Plan{Start: 0}).Describe(4) != "forward" ||
		(Plan{Start: 3}).Describe(4) != "backward" ||
		(Plan{Start: 2}).Describe(4) != "zigzag@2" {
		t.Fatal("plan descriptions wrong")
	}
}

func TestPlannerCostsFromExactEstimates(t *testing.T) {
	g := testGraph(t)
	c := paths.NewCensus(g, 4)
	pl := Planner{Est: EstimatorFunc(func(p paths.Path) float64 {
		return float64(c.Selectivity(p))
	})}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		p := make(paths.Path, n)
		for i := range p {
			p[i] = rng.Intn(3)
		}
		// With exact estimates, every plan's cost equals its actual work.
		for s := 0; s < n; s++ {
			_, st := ExecutePlan(g, p, Plan{Start: s}, Options{})
			if got := pl.PlanCost(p, s); got != float64(st.Work) {
				t.Fatalf("path %v start %d: cost %v != actual work %d", p, s, got, st.Work)
			}
		}
		// Therefore the chosen plan is globally cheapest.
		chosen := pl.ChoosePlan(p)
		_, cst := ExecutePlan(g, p, chosen, Options{})
		for s := 0; s < n; s++ {
			_, st := ExecutePlan(g, p, Plan{Start: s}, Options{})
			if cst.Work > st.Work {
				t.Fatalf("path %v: chose start %d (work %d) over cheaper start %d (work %d)",
					p, chosen.Start, cst.Work, s, st.Work)
			}
		}
		// And the legacy 2-plan API agrees with the endpoint costs.
		_, fst := Execute(g, p, Forward)
		_, bst := Execute(g, p, Backward)
		if got := pl.Cost(p, Forward); got != float64(fst.Work) {
			t.Fatalf("forward cost %v != actual work %d", got, fst.Work)
		}
		if got := pl.Cost(p, Backward); got != float64(bst.Work) {
			t.Fatalf("backward cost %v != actual work %d", got, bst.Work)
		}
	}
}

func TestPlannerCostsSlice(t *testing.T) {
	g := testGraph(t)
	c := paths.NewCensus(g, 3)
	pl := Planner{Est: EstimatorFunc(func(p paths.Path) float64 {
		return float64(c.Selectivity(p))
	})}
	p := paths.Path{0, 1, 2}
	costs := pl.Costs(p)
	if len(costs) != 3 {
		t.Fatalf("Costs length %d", len(costs))
	}
	for s, want := range costs {
		if got := pl.PlanCost(p, s); got != want {
			t.Fatalf("Costs[%d] = %v, PlanCost = %v", s, want, got)
		}
	}
}

func TestPlannerTieGoesForward(t *testing.T) {
	pl := Planner{Est: EstimatorFunc(func(paths.Path) float64 { return 1 })}
	if pl.Choose(paths.Path{0, 1}) != Forward {
		t.Fatal("ties should go forward")
	}
	if pl.ChoosePlan(paths.Path{0, 1, 2}).Start != 0 {
		t.Fatal("plan ties should go forward")
	}
}
