package exec

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/relcache"
)

// Direction is one of the two endpoint join orders for a path query. It
// survives as convenience API over the general Plan: Forward is the plan
// starting at position 0, Backward the plan starting at the last label.
type Direction int

// Join directions.
const (
	// Forward evaluates l1, l1/l2, … building prefixes left-to-right.
	Forward Direction = iota
	// Backward evaluates lk, l(k-1)/lk, … building suffixes right-to-left.
	Backward
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Plan returns the equivalent zig-zag plan for a length-k query.
func (d Direction) Plan(k int) Plan {
	switch d {
	case Forward:
		return Plan{Start: 0}
	case Backward:
		return Plan{Start: k - 1}
	default:
		panic(fmt.Sprintf("exec: unknown direction %d", int(d)))
	}
}

// Plan is a zig-zag join plan for a length-k path query: begin with the
// single-label relation at position Start, extend right to the end of the
// path, then prepend the remaining labels leftward. Start 0 is the
// classic forward (left-to-right) plan, Start k−1 the backward plan;
// interior starts let the join begin at the most selective label, which
// neither endpoint plan can reach.
type Plan struct {
	// Start is the position of the label the join grows from, in [0, k).
	Start int
}

// Describe renders the plan for a length-k query: "forward", "backward",
// or "zigzag@i" for interior starts.
func (pl Plan) Describe(k int) string {
	switch {
	case pl.Start == 0:
		return "forward"
	case pl.Start == k-1:
		return "backward"
	default:
		return fmt.Sprintf("zigzag@%d", pl.Start)
	}
}

// Options tunes plan execution.
type Options struct {
	// DensityThreshold is the hybrid rows' sparse→dense promotion
	// threshold as a fraction of |V| (≤ 0 selects
	// bitset.DefaultDensityThreshold of 1/32; ≥ 1 keeps every row
	// sparse). Purely a performance knob — results are identical at any
	// setting.
	DensityThreshold float64
	// Workers is the join-step parallelism (≤ 0 selects GOMAXPROCS, 1
	// runs fully sequential): the source rows of the relation entering
	// each compose step are partitioned into shards and distributed over
	// the shared work-stealing scheduler (internal/sched), then merged
	// deterministically, so results are bit-identical at every setting —
	// another performance-only knob. Relations too small to shard
	// profitably execute sequentially regardless.
	Workers int
	// Cache is the shared segment-relation cache (nil disables caching).
	// Execution consults it at every segment boundary: a segment of
	// length ≥ 2 whose relation is already cached — by an earlier query
	// of the workload, an earlier step of this query, or another worker
	// running concurrently — is adopted by copy instead of composed, and
	// every freshly composed segment is published back. Adoption is
	// bit-identical to recomputation (entries from a different universe
	// or density regime are ignored, and relation construction is
	// deterministic), so hit/miss order never changes results — only
	// Stats.CacheHits/CacheMisses and, on a whole-query hit, the
	// intermediate bookkeeping. A cache is bound to one graph; sharing
	// it across graphs returns wrong relations.
	Cache *relcache.Cache
}

// Stats reports what an execution actually did.
type Stats struct {
	// Plan is the executed zig-zag join plan. For a bushy execution
	// (ExecuteTree with a join node at the root) there is no single
	// zig-zag start; Plan.Start is −1 and Tree holds the real plan.
	Plan Plan
	// Tree is the executed plan tree, set by ExecuteTree (nil for plain
	// zig-zag executions). A leaf tree is exactly a zig-zag plan.
	Tree *PlanTree
	// Intermediates holds the distinct-pair count of every relation
	// entering a join step (the final result is Result). For zig-zag
	// plans that is len(p)−1 entries in step order; for a bushy tree it
	// is every materialized segment — each leaf's intermediates plus both
	// inputs of each relation×relation join — in the executor's
	// deterministic post-order. These are exactly the selectivities of
	// the plan's interior segments, so estimating them well is estimating
	// the plan's cost well.
	Intermediates []int64
	// Work is the total intermediate volume Σ Intermediates — the cost a
	// join-order optimizer tries to minimize.
	Work int64
	// Result is |ℓ(G)|, identical for every plan.
	Result int64
	// CacheHits and CacheMisses count the execution's segment-cache
	// traffic when Options.Cache is set (both zero otherwise): a hit is a
	// segment adopted from the cache instead of composed, a miss is a
	// cacheable segment (length ≥ 2) that had to be computed and was
	// published back. A whole-query hit short-circuits execution
	// entirely — then Intermediates is empty and Work 0, because nothing
	// intermediate was materialized.
	CacheHits, CacheMisses int
}

// Execute evaluates p over g with the endpoint plan of the given direction
// and returns the result relation plus execution statistics. It panics on
// an empty path. It is ExecutePlan with Direction sugar and default
// options.
func Execute(g *graph.CSR, p paths.Path, dir Direction) (*bitset.HybridRelation, Stats) {
	if len(p) == 0 {
		panic("exec: empty path query")
	}
	return ExecutePlan(g, p, dir.Plan(len(p)), Options{})
}

// ExecutePlan evaluates p over g with the given zig-zag plan, entirely on
// the hybrid sparse/dense substrate: two pooled relations are
// double-buffered through the specialized sparse×CSR / dense×CSR compose
// kernels, and each row adapts its representation per step (a prefix that
// densifies mid-join promotes in place; one that thins back out demotes).
// Rightward steps compose with successor operands; leftward steps reverse
// once and compose with predecessor operands, so no step ever multiplies
// from the expensive side.
//
// Each compose step runs on Options.Workers work-stealing workers
// (default GOMAXPROCS): the input relation's source rows are partitioned
// into shards, composed concurrently into the shared destination (rows
// are disjoint across shards), and merged deterministically, so the
// result is bit-identical to sequential execution at every worker count.
// It panics on an empty path or an out-of-range plan start.
func ExecutePlan(g *graph.CSR, p paths.Path, plan Plan, opt Options) (*bitset.HybridRelation, Stats) {
	k := len(p)
	if k == 0 {
		panic("exec: empty path query")
	}
	if plan.Start < 0 || plan.Start >= k {
		panic(fmt.Sprintf("exec: plan start %d out of range [0,%d)", plan.Start, k))
	}
	st := Stats{Plan: plan}
	n := g.NumVertices()
	sc := newSegCache(opt.Cache, n, opt.DensityThreshold)
	// Whole-query fast path: a workload that repeats this exact query (or
	// a bushy plan that already joined these labels) left the finished
	// relation in the cache — adopt it without materializing anything.
	var buf *bitset.HybridRelation
	if sc != nil && k >= 2 {
		buf = bitset.NewHybrid(n, opt.DensityThreshold)
		if sc.adopt(p, false, buf) {
			st.CacheHits, st.CacheMisses = sc.counters()
			st.Result = buf.Pairs()
			return buf, st
		}
	}
	cur := bitset.HybridFromCSR(g.LabelOperand(p[plan.Start]), opt.DensityThreshold)
	if k == 1 {
		st.Result = cur.Pairs()
		return cur, st
	}
	if buf == nil {
		buf = bitset.NewHybrid(n, opt.DensityThreshold)
	}
	stp := newStepper(n, opt.Workers)
	// Grow rightward: cur holds the segment p[Start:j). Each finished
	// segment is adopted from the cache when available and published when
	// not, so the recorded intermediates — every segment gets materialized
	// either way — are identical to an uncached run.
	for j := plan.Start + 1; j < k; j++ {
		st.Intermediates = append(st.Intermediates, cur.Pairs())
		if seg := p[plan.Start : j+1]; !sc.adopt(seg, false, buf) {
			stp.compose(cur, buf, g.LabelOperand(p[j]))
			sc.put(seg, false, buf)
		}
		cur, buf = buf, cur
	}
	// Grow leftward on the reversed relation: prepending label l to a
	// segment is composing the reversed segment with l's predecessor
	// operand. Reversal is linear and does not change Pairs, so the
	// recorded intermediates are still segment selectivities. Leftward
	// segments are cached in their reversed orientation — a different
	// pair set than the forward segment, hence the direction key.
	if plan.Start > 0 {
		cur.ReverseInto(buf)
		cur, buf = buf, cur
		for i := plan.Start - 1; i >= 0; i-- {
			st.Intermediates = append(st.Intermediates, cur.Pairs())
			if seg := p[i:]; !sc.adopt(seg, true, buf) {
				stp.compose(cur, buf, g.PredecessorOperand(p[i]))
				sc.put(seg, true, buf)
			}
			cur, buf = buf, cur
		}
		cur.ReverseInto(buf)
		cur, buf = buf, cur
		// Publish the whole query in forward orientation so repeats take
		// the fast path no matter which plan produced the relation. It
		// was derived by reversal, not composed, so it counts no miss.
		sc.publish(p, false, cur)
	}
	for _, v := range st.Intermediates {
		st.Work += v
	}
	st.CacheHits, st.CacheMisses = sc.counters()
	st.Result = cur.Pairs()
	return cur, st
}
