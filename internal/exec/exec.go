package exec

import (
	"fmt"
	"runtime/debug"

	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/paths"
	"repro/internal/relcache"
	"repro/internal/sched"
)

// callerPanic converts a panic recovered on the calling goroutine into
// the same typed *sched.PanicError the scheduler produces for a panic
// contained on a worker; Worker −1 marks the caller's own goroutine.
// The checked executors use it so a panic anywhere on the execution
// path — a fault-injection site, a kernel bug — surfaces as an error
// instead of unwinding through the caller (in a server, that unwind
// severs the client's connection).
func callerPanic(r any) error {
	return &sched.PanicError{Worker: -1, Value: r, Stack: debug.Stack()}
}

// containPanics invokes fn, converting an escaping panic into a
// callerPanic error. Precondition panics (caller bugs) must be raised
// before entering fn, not inside it.
func containPanics(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = callerPanic(r)
		}
	}()
	return fn()
}

// Direction is one of the two endpoint join orders for a path query. It
// survives as convenience API over the general Plan: Forward is the plan
// starting at position 0, Backward the plan starting at the last label.
type Direction int

// Join directions.
const (
	// Forward evaluates l1, l1/l2, … building prefixes left-to-right.
	Forward Direction = iota
	// Backward evaluates lk, l(k-1)/lk, … building suffixes right-to-left.
	Backward
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Plan returns the equivalent zig-zag plan for a length-k query.
func (d Direction) Plan(k int) Plan {
	switch d {
	case Forward:
		return Plan{Start: 0}
	case Backward:
		return Plan{Start: k - 1}
	default:
		panic(fmt.Sprintf("exec: unknown direction %d", int(d)))
	}
}

// Plan is a zig-zag join plan for a length-k path query: begin with the
// single-label relation at position Start, extend right to the end of the
// path, then prepend the remaining labels leftward. Start 0 is the
// classic forward (left-to-right) plan, Start k−1 the backward plan;
// interior starts let the join begin at the most selective label, which
// neither endpoint plan can reach.
type Plan struct {
	// Start is the position of the label the join grows from, in [0, k).
	Start int
}

// Describe renders the plan for a length-k query: "forward", "backward",
// or "zigzag@i" for interior starts.
func (pl Plan) Describe(k int) string {
	switch {
	case pl.Start == 0:
		return "forward"
	case pl.Start == k-1:
		return "backward"
	default:
		return fmt.Sprintf("zigzag@%d", pl.Start)
	}
}

// Options tunes plan execution.
type Options struct {
	// DensityThreshold is the hybrid rows' sparse→dense promotion
	// threshold as a fraction of |V| (≤ 0 selects
	// bitset.DefaultDensityThreshold of 1/32; ≥ 1 keeps every row
	// sparse). Purely a performance knob — results are identical at any
	// setting.
	DensityThreshold float64
	// Workers is the join-step parallelism (≤ 0 selects GOMAXPROCS, 1
	// runs fully sequential): the source rows of the relation entering
	// each compose step are partitioned into shards and distributed over
	// the shared work-stealing scheduler (internal/sched), then merged
	// deterministically, so results are bit-identical at every setting —
	// another performance-only knob. Relations too small to shard
	// profitably execute sequentially regardless.
	Workers int
	// Cache is the shared segment-relation cache (nil disables caching).
	// Execution consults it at every segment boundary: a segment of
	// length ≥ 2 whose relation is already cached — by an earlier query
	// of the workload, an earlier step of this query, or another worker
	// running concurrently — is adopted by copy instead of composed, and
	// every freshly composed segment is published back. Adoption is
	// bit-identical to recomputation (entries from a different universe
	// or density regime are ignored, and relation construction is
	// deterministic), so hit/miss order never changes results — only
	// Stats.CacheHits/CacheMisses and, on a whole-query hit, the
	// intermediate bookkeeping. A cache is bound to one graph; sharing
	// it across graphs returns wrong relations.
	Cache *relcache.Cache
	// Cancel, when non-nil, makes the execution cooperatively
	// cancellable: the checked executors consult it between join steps,
	// and its kernel flag is wired into every compose scratch so even one
	// huge step aborts with bounded latency. A cancelled execution
	// returns the canceller's cause (ErrCancelled, ErrDeadlineExceeded,
	// or ErrBudgetExceeded) from the Checked entry points; the legacy
	// entry points panic on it, so only pair a canceller with
	// ExecutePlanChecked/ExecuteTreeChecked.
	Cancel *Canceller
	// MaxResultBytes, when > 0, bounds every relation the execution
	// materializes, priced at clone size (content bytes). The first
	// intermediate or result over the bound aborts the execution with
	// ErrBudgetExceeded — the executable form of the paper's thesis that
	// intermediate volume is what makes a path query expensive.
	MaxResultBytes int64
	// Pool, when non-nil, supplies every relation the execution
	// materializes and reclaims them on completion and on every abort
	// path. The returned result relation stays checked out; the caller
	// releases it with Pool.Put when done reading. Purely an
	// allocation/leak-hygiene knob — results are identical with or
	// without it.
	Pool *RelPool
}

// Stats reports what an execution actually did.
type Stats struct {
	// Plan is the executed zig-zag join plan. For a bushy execution
	// (ExecuteTree with a join node at the root) there is no single
	// zig-zag start; Plan.Start is −1 and Tree holds the real plan.
	Plan Plan
	// Tree is the executed plan tree, set by ExecuteTree (nil for plain
	// zig-zag executions). A leaf tree is exactly a zig-zag plan.
	Tree *PlanTree
	// Intermediates holds the distinct-pair count of every relation
	// entering a join step (the final result is Result). For zig-zag
	// plans that is len(p)−1 entries in step order; for a bushy tree it
	// is every materialized segment — each leaf's intermediates plus both
	// inputs of each relation×relation join — in the executor's
	// deterministic post-order. These are exactly the selectivities of
	// the plan's interior segments, so estimating them well is estimating
	// the plan's cost well.
	Intermediates []int64
	// Work is the total intermediate volume Σ Intermediates — the cost a
	// join-order optimizer tries to minimize.
	Work int64
	// Result is |ℓ(G)|, identical for every plan.
	Result int64
	// CacheHits and CacheMisses count the execution's segment-cache
	// traffic when Options.Cache is set (both zero otherwise): a hit is a
	// segment adopted from the cache instead of composed, a miss is a
	// cacheable segment (length ≥ 2) that had to be computed and was
	// published back. A whole-query hit short-circuits execution
	// entirely — then Intermediates is empty and Work 0, because nothing
	// intermediate was materialized.
	CacheHits, CacheMisses int
	// Sched reports the execution's scheduler activity — how the sharded
	// join steps actually ran. All-zero when every step fell below the
	// granularity floor (or on a whole-query cache hit, which never
	// builds a scheduler): sequential steps bypass the scheduler
	// entirely, so zeros mean "no parallel work", not "no work".
	Sched SchedStats
}

// SchedStats aggregates work-stealing scheduler counters over an
// execution: one stepper's rounds for a zig-zag plan, every stepper in
// the tree for a bushy plan. Steals and Parks are the contention
// signals — a steal is a shard that migrated off its home worker, a park
// is a worker that went to sleep hungry — and their ratio to Tasks is
// what the granularity floor (internal/sched.Granularity) exists to keep
// low.
type SchedStats struct {
	// Tasks is the total number of scheduler tasks executed (compose,
	// join, and merge shards).
	Tasks int64
	// Steals counts tasks taken from another worker's deque.
	Steals int64
	// Parks counts workers going to sleep after finding every deque
	// empty.
	Parks int64
	// TasksPerWorker breaks Tasks down by worker index. Bushy plans run
	// several steppers with their own worker sets, possibly of different
	// widths; slots add up across them, so the slice length is the widest
	// scheduler seen.
	TasksPerWorker []int64
}

// add folds one scheduler's counter snapshot into the aggregate.
func (s *SchedStats) add(c sched.Counters) {
	s.Tasks += c.TotalTasks()
	s.Steals += c.Steals
	s.Parks += c.Parks
	for len(s.TasksPerWorker) < len(c.Tasks) {
		s.TasksPerWorker = append(s.TasksPerWorker, 0)
	}
	for i, v := range c.Tasks {
		s.TasksPerWorker[i] += v
	}
}

// merge folds another aggregate in (used by the bushy executor, whose
// subtree executions aggregate independently before joining).
func (s *SchedStats) merge(o SchedStats) {
	s.Tasks += o.Tasks
	s.Steals += o.Steals
	s.Parks += o.Parks
	for len(s.TasksPerWorker) < len(o.TasksPerWorker) {
		s.TasksPerWorker = append(s.TasksPerWorker, 0)
	}
	for i, v := range o.TasksPerWorker {
		s.TasksPerWorker[i] += v
	}
}

// Execute evaluates p over g with the endpoint plan of the given direction
// and returns the result relation plus execution statistics. It panics on
// an empty path. It is ExecutePlan with Direction sugar and default
// options.
func Execute(g *graph.CSR, p paths.Path, dir Direction) (*bitset.HybridRelation, Stats) {
	if len(p) == 0 {
		panic("exec: empty path query")
	}
	return ExecutePlan(g, p, dir.Plan(len(p)), Options{})
}

// ExecutePlan evaluates p over g with the given zig-zag plan, entirely on
// the hybrid sparse/dense substrate: two pooled relations are
// double-buffered through the specialized sparse×CSR / dense×CSR compose
// kernels, and each row adapts its representation per step (a prefix that
// densifies mid-join promotes in place; one that thins back out demotes).
// Rightward steps compose with successor operands; leftward steps reverse
// once and compose with predecessor operands, so no step ever multiplies
// from the expensive side.
//
// Each compose step runs on Options.Workers work-stealing workers
// (default GOMAXPROCS): the input relation's source rows are partitioned
// into shards, composed concurrently into the shared destination (rows
// are disjoint across shards), and merged deterministically, so the
// result is bit-identical to sequential execution at every worker count.
// It panics on an empty path or an out-of-range plan start.
func ExecutePlan(g *graph.CSR, p paths.Path, plan Plan, opt Options) (*bitset.HybridRelation, Stats) {
	rel, st, err := ExecutePlanChecked(g, p, plan, opt)
	if err != nil {
		// Legacy callers pass no canceller or budget, so the only way
		// here is a contained worker panic — re-raise it on the caller.
		panic(fmt.Sprintf("exec: unchecked execution failed: %v", err))
	}
	return rel, st
}

// ExecutePlanChecked is ExecutePlan with cancellation, deadline, and
// budget enforcement: it consults Options.Cancel before and after every
// join step (and wires its kernel flag into the compose scratches, so
// cancellation lands mid-step too), prices every materialized relation
// against Options.MaxResultBytes, and contains worker panics as typed
// errors. On error the returned relation is nil, every pooled relation
// has been released back to Options.Pool, and the error matches
// ErrCancelled / ErrDeadlineExceeded / ErrBudgetExceeded under errors.Is
// (or *sched.PanicError under errors.As for a contained panic). A
// cancelled step's partial destination is discarded, never cached, so a
// surviving execution — cancelled after its last step or not cancelled
// at all — is bit-identical to an unchecked run. Like ExecutePlan it
// panics on an empty path or an out-of-range plan start (caller bugs,
// not runtime failures).
func ExecutePlanChecked(g *graph.CSR, p paths.Path, plan Plan, opt Options) (rel *bitset.HybridRelation, st Stats, err error) {
	k := len(p)
	if k == 0 {
		panic("exec: empty path query")
	}
	if plan.Start < 0 || plan.Start >= k {
		panic(fmt.Sprintf("exec: plan start %d out of range [0,%d)", plan.Start, k))
	}
	st = Stats{Plan: plan}
	n := g.NumVertices()
	if err := opt.Cancel.Err(); err != nil {
		return nil, st, err
	}
	sc := newSegCache(opt.Cache, n, opt.DensityThreshold)
	var cur, buf *bitset.HybridRelation
	// Preconditions are validated; from here every panic — fault
	// injection at a step boundary, a kernel bug on the caller's own
	// goroutine — is contained as a typed error, with the in-flight
	// relations released, matching the contract above. (Worker-side
	// panics are contained by the scheduler before they reach here.)
	defer func() {
		if r := recover(); r != nil {
			putRel(opt.Pool, cur)
			putRel(opt.Pool, buf)
			rel, err = nil, callerPanic(r)
		}
	}()
	fail := func(err error) (*bitset.HybridRelation, Stats, error) {
		putRel(opt.Pool, cur)
		putRel(opt.Pool, buf)
		return nil, st, err
	}
	// Whole-query fast path: a workload that repeats this exact query (or
	// a bushy plan that already joined these labels) left the finished
	// relation in the cache — adopt it without materializing anything.
	if sc != nil && k >= 2 {
		buf = getRel(opt.Pool, n, opt.DensityThreshold)
		if sc.adopt(p, false, buf) {
			st.CacheHits, st.CacheMisses = sc.counters()
			st.Result = buf.Pairs()
			if err := opt.checkBudget(buf); err != nil {
				return fail(err)
			}
			cur, buf = buf, nil
			return cur, st, nil
		}
	}
	cur = getRel(opt.Pool, n, opt.DensityThreshold)
	cur.FillFromCSR(g.LabelOperand(p[plan.Start]))
	if k == 1 {
		putRel(opt.Pool, buf)
		buf = nil
		st.Result = cur.Pairs()
		return cur, st, nil
	}
	if buf == nil {
		buf = getRel(opt.Pool, n, opt.DensityThreshold)
	}
	stp := newStepper(n, opt.Workers)
	stp.setCancel(opt.Cancel.Flag())
	// Grow rightward: cur holds the segment p[Start:j). Each finished
	// segment is adopted from the cache when available and published when
	// not, so the recorded intermediates — every segment gets materialized
	// either way — are identical to an uncached run. The faultinject site
	// at each step boundary lets chaos tests insert deterministic delays
	// (tripping deadlines) without touching real kernels.
	for j := plan.Start + 1; j < k; j++ {
		st.Intermediates = append(st.Intermediates, cur.Pairs())
		faultinject.Fire("exec.step")
		if err := opt.Cancel.Err(); err != nil {
			return fail(err)
		}
		if seg := p[plan.Start : j+1]; !sc.adopt(seg, false, buf) {
			if err := stp.compose(cur, buf, g.LabelOperand(p[j])); err != nil {
				return fail(err)
			}
			if err := opt.Cancel.Err(); err != nil {
				return fail(err) // partial step output: discard, never cache
			}
			sc.put(seg, false, buf)
		}
		cur, buf = buf, cur
		if err := opt.checkBudget(cur); err != nil {
			return fail(err)
		}
	}
	// Grow leftward on the reversed relation: prepending label l to a
	// segment is composing the reversed segment with l's predecessor
	// operand. Reversal is linear and does not change Pairs, so the
	// recorded intermediates are still segment selectivities. Leftward
	// segments are cached in their reversed orientation — a different
	// pair set than the forward segment, hence the orientation marker.
	if plan.Start > 0 {
		cur.ReverseInto(buf)
		cur, buf = buf, cur
		for i := plan.Start - 1; i >= 0; i-- {
			st.Intermediates = append(st.Intermediates, cur.Pairs())
			faultinject.Fire("exec.step")
			if err := opt.Cancel.Err(); err != nil {
				return fail(err)
			}
			if seg := p[i:]; !sc.adopt(seg, true, buf) {
				if err := stp.compose(cur, buf, g.PredecessorOperand(p[i])); err != nil {
					return fail(err)
				}
				if err := opt.Cancel.Err(); err != nil {
					return fail(err)
				}
				sc.put(seg, true, buf)
			}
			cur, buf = buf, cur
			if err := opt.checkBudget(cur); err != nil {
				return fail(err)
			}
		}
		cur.ReverseInto(buf)
		cur, buf = buf, cur
		// No forward republish is needed for the fast path: the step
		// loop cached the whole query in reversed orientation, and the
		// orientation-canonical cache derives the forward form on
		// adoption.
	}
	putRel(opt.Pool, buf)
	buf = nil
	for _, v := range st.Intermediates {
		st.Work += v
	}
	st.CacheHits, st.CacheMisses = sc.counters()
	st.Sched.add(stp.counters())
	st.Result = cur.Pairs()
	return cur, st, nil
}
