// Package exec evaluates path queries with explicit join plans — the
// query-engine substrate the paper's introduction motivates: a graph
// database's optimizer uses cardinality estimates to choose among
// execution plans, and estimate quality shows up as plan quality.
//
// A length-k path query can be joined left-to-right (forward) or
// right-to-left (backward). Both produce the same answer; their costs
// differ by the sizes of the intermediate results, which are exactly the
// selectivities of the query's prefixes (forward) or suffixes (backward).
// A Planner compares the two cost sums using a selectivity estimator and
// picks a direction; Execute carries the plan out and reports the actual
// intermediate sizes so planning quality is measurable.
package exec

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/graph"
	"repro/internal/paths"
)

// Direction is a join order for a path query.
type Direction int

// Join directions.
const (
	// Forward evaluates l1, l1/l2, … building prefixes left-to-right.
	Forward Direction = iota
	// Backward evaluates lk, l(k-1)/lk, … building suffixes right-to-left.
	Backward
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case Forward:
		return "forward"
	case Backward:
		return "backward"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Stats reports what an execution actually did.
type Stats struct {
	Direction Direction
	// Intermediates holds the distinct-pair count after each join step
	// (len(p)−1 entries; the final result is Result).
	Intermediates []int64
	// Work is the total intermediate volume Σ Intermediates — the cost a
	// join-order optimizer tries to minimize.
	Work int64
	// Result is |ℓ(G)|, identical for both directions.
	Result int64
}

// Execute evaluates p over g in the given direction and returns the result
// relation plus execution statistics. It panics on an empty path.
func Execute(g *graph.CSR, p paths.Path, dir Direction) (*bitset.Relation, Stats) {
	if len(p) == 0 {
		panic("exec: empty path query")
	}
	st := Stats{Direction: dir}
	var rel *bitset.Relation
	switch dir {
	case Forward:
		rel = g.EdgeRelation(p[0])
		for _, l := range p[1:] {
			st.Intermediates = append(st.Intermediates, rel.Pairs())
			rel = rel.Compose(g.SuccessorSets(l))
		}
	case Backward:
		// Build the suffix relation reversed (target → source) so each
		// prepend step is a composition with predecessor sets; un-reverse
		// at the end.
		rev := g.EdgeRelation(p[len(p)-1]).Reverse()
		for i := len(p) - 2; i >= 0; i-- {
			st.Intermediates = append(st.Intermediates, rev.Pairs())
			rev = rev.Compose(g.PredecessorSets(p[i]))
		}
		rel = rev.Reverse()
	default:
		panic(fmt.Sprintf("exec: unknown direction %d", int(dir)))
	}
	for _, n := range st.Intermediates {
		st.Work += n
	}
	st.Result = rel.Pairs()
	return rel, st
}

// Estimator supplies selectivity estimates to the planner. Both
// *core.PathHistogram (wrapped) and exact censuses satisfy it via
// EstimatorFunc.
type Estimator interface {
	Estimate(p paths.Path) float64
}

// EstimatorFunc adapts a function to the Estimator interface.
type EstimatorFunc func(p paths.Path) float64

// Estimate implements Estimator.
func (f EstimatorFunc) Estimate(p paths.Path) float64 { return f(p) }

// Planner chooses join directions from selectivity estimates.
type Planner struct {
	Est Estimator
}

// Cost returns the estimated intermediate volume of evaluating p in the
// given direction: the sum of estimated prefix (or suffix) selectivities,
// excluding the final result (which is direction-independent).
func (pl Planner) Cost(p paths.Path, dir Direction) float64 {
	var cost float64
	switch dir {
	case Forward:
		for n := 1; n < len(p); n++ {
			cost += pl.Est.Estimate(p[:n])
		}
	case Backward:
		for n := 1; n < len(p); n++ {
			cost += pl.Est.Estimate(p[len(p)-n:])
		}
	default:
		panic(fmt.Sprintf("exec: unknown direction %d", int(dir)))
	}
	return cost
}

// Choose returns the direction with the lower estimated cost (ties go
// forward, the conventional default).
func (pl Planner) Choose(p paths.Path) Direction {
	if pl.Cost(p, Backward) < pl.Cost(p, Forward) {
		return Backward
	}
	return Forward
}
