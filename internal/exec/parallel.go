package exec

import (
	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/sched"
)

// Shard sizing for parallel join steps. A shard is a contiguous run of the
// input relation's active-source list; row composes are independent, so
// work-stealing over several shards per worker absorbs row-weight skew
// without any per-row bookkeeping.
const (
	// minShardRows is the smallest active-source count worth handing to
	// another goroutine: below it one row range composes in roughly the
	// time a spawn/steal handoff costs.
	minShardRows = 32
	// minShardPairs is the work-weight sequential floor: a relation
	// carrying fewer pairs than twice this composes in a few microseconds
	// total, so sharding it buys nothing and feeds the steal path pure
	// contention. Row count alone cannot see this case — a short segment
	// can have many nearly-empty rows — which is why the granularity
	// policy weighs both axes.
	minShardPairs = 2048
	// shardsPerWorker oversubscribes the shard count so stolen shards can
	// rebalance a skewed row-weight distribution.
	shardsPerWorker = 4
)

// shardGrain is the executor's task-granularity policy: items are active
// source rows, work is the input relation's pair count. One policy value
// serves compose and join steps alike, so their sequential floors cannot
// drift apart.
var shardGrain = sched.Granularity{
	MinItems:  minShardRows,
	MinWork:   minShardPairs,
	PerWorker: shardsPerWorker,
}

// minMergeSources is the merged active-list length below which the
// coordinator copies the per-shard source runs serially: the merge is a
// pure memcpy, so parallelizing it only pays once the list is tens of
// kilobytes — the compose/join tails of genuinely large steps, which are
// exactly where the serial ascending-order AdoptShard loop used to
// flatten the scaling curve. A var, not a const, so the property tests
// can lower it and drive the parallel merge on small inputs.
var minMergeSources = 1 << 13

// shardTask identifies one task of the current scheduler round by index:
// during a compose/join round, the shard of the bounds table it composes;
// during a merge round, the shard whose produced sources it copies into
// the pre-sized active list at offs[idx]. Tasks own disjoint row ranges
// (compose) or disjoint list ranges (merge), so bodies write disjoint
// state — the determinism contract of internal/sched.
type shardTask struct{ idx int }

// stepper drives the sharded join steps of one ExecutePlan call on the
// shared work-stealing scheduler (internal/sched). One stepper serves all
// k−1 steps of a plan: per-worker scratches, per-shard source buffers, and
// the scheduler itself persist across steps, so the steady state allocates
// nothing beyond first use.
type stepper struct {
	sch     *sched.Scheduler[shardTask]
	n       int
	scratch []*bitset.ComposeScratch // lazily built, indexed by worker
	cancel  *bitset.CancelFlag       // wired into every scratch; nil when unchecked

	// Per-step state, written by the coordinator between Drain rounds and
	// read by shard bodies during one. Exactly one of op / right is the
	// step's right-hand operand: compose steps set op (relation×CSR),
	// bushy join steps set right (relation×relation). merging flips the
	// round kind: false runs compose/join shard bodies, true runs
	// active-list copy bodies over the same task indices.
	cur, dst *bitset.HybridRelation
	op       bitset.CSROperand
	right    *bitset.HybridRelation
	merging  bool
	bounds   []int     // shard i covers active positions [bounds[i], bounds[i+1])
	srcs     [][]int32 // per-shard produced sources, reused across steps
	pairs    []int64   // per-shard produced pair counts
	offs     []int     // per-shard active-list write offsets (prefix sums)
}

// newStepper returns a stepper for an n-vertex universe with
// sched.WorkerCount(workers) workers, clamped to the most shards any step
// over this universe can produce (n/minShardRows) — workers beyond that
// could never hold a shard and would only idle, park, and add steal
// scans. No goroutines or scratches are built until the first sharded
// step.
func newStepper(n, workers int) *stepper {
	st := &stepper{n: n}
	w := sched.ClampWorkers(sched.WorkerCount(workers), n/minShardRows)
	st.sch = sched.New(w, st.runShard)
	st.scratch = make([]*bitset.ComposeScratch, st.sch.Workers())
	return st
}

// scr returns worker w's compose scratch, building it on first use. Only
// worker w's goroutine (or the coordinator between Drain rounds, for
// sequential fallback steps through worker 0) ever touches slot w, so no
// locking is needed.
func (st *stepper) scr(w int) *bitset.ComposeScratch {
	if st.scratch[w] == nil {
		st.scratch[w] = bitset.NewComposeScratch(st.n)
		st.scratch[w].SetCancel(st.cancel)
	}
	return st.scratch[w]
}

// setCancel wires a cancellation flag into every scratch (existing and
// future), so the kernels of each subsequent step poll it mid-row-loop.
func (st *stepper) setCancel(f *bitset.CancelFlag) {
	st.cancel = f
	for _, scr := range st.scratch {
		if scr != nil {
			scr.SetCancel(f)
		}
	}
}

// counters snapshots the stepper's scheduler activity for Stats.
func (st *stepper) counters() sched.Counters { return st.sch.Counters() }

// runShard is the scheduler task body. In a compose/join round it
// composes (or joins, when the step's right-hand operand is a relation)
// the shard's row range into the shared destination with the executing
// worker's scratch, parking the produced sources and pair count in the
// shard's own slots. In a merge round it copies the shard's parked
// sources into the destination's pre-sized active list at the shard's
// prefix-sum offset — ranges are disjoint by construction, so the merge
// runs on the same scheduler with the same determinism contract.
func (st *stepper) runShard(worker int, t shardTask) {
	faultinject.Fire("exec.shard")
	if st.merging {
		st.dst.AdoptShardAt(st.offs[t.idx], st.srcs[t.idx])
		return
	}
	lo, hi := st.bounds[t.idx], st.bounds[t.idx+1]
	if st.right != nil {
		st.srcs[t.idx], st.pairs[t.idx] = st.cur.JoinShardInto(
			st.dst, st.right, st.scr(worker), lo, hi, st.srcs[t.idx])
	} else {
		st.srcs[t.idx], st.pairs[t.idx] = st.cur.ComposeShardInto(
			st.dst, st.op, st.scr(worker), lo, hi, st.srcs[t.idx])
	}
}

// compose runs one join step cur ∘ op → dst. Steps above the granularity
// floor (enough active sources and enough pairs — shardGrain weighs both)
// are partitioned into shards and composed in parallel, then merged
// deterministically, so the result — rows, active order, and pair count —
// is bit-identical to sequential ComposeInto. Small steps and 1-worker
// configurations fall through to the sequential kernel without touching
// the scheduler at all: parallelism is a performance decision per step,
// never a semantic one.
func (st *stepper) compose(cur, dst *bitset.HybridRelation, op bitset.CSROperand) error {
	shards := shardGrain.Shards(cur.Sources(), cur.Pairs(), st.sch.Workers())
	if shards <= 1 {
		cur.ComposeInto(dst, op, st.scr(0))
		return nil
	}
	st.op, st.right = op, nil
	return st.runSharded(cur, dst, shards)
}

// join runs one bushy join step cur ∘ right → dst through the same
// sharding machinery as compose, with the relation×relation kernel
// (bitset.JoinShardInto) as the task body. The merge discipline is
// identical, so the result is bit-identical to sequential JoinInto.
func (st *stepper) join(cur, dst, right *bitset.HybridRelation) error {
	shards := shardGrain.Shards(cur.Sources(), cur.Pairs(), st.sch.Workers())
	if shards <= 1 {
		cur.JoinInto(dst, right, st.scr(0))
		return nil
	}
	st.right = right
	return st.runSharded(cur, dst, shards)
}

// runSharded partitions cur's active sources into shards, runs them on
// the scheduler, and merges the outcome deterministically: small merges
// adopt the per-shard source runs serially in ascending shard order;
// merges of minMergeSources or more pre-size the destination's active
// list (BeginAdopt) and copy every shard's run into its disjoint
// prefix-sum range in a second scheduler round, which writes the same
// ascending concatenation without serializing the tail on the
// coordinator. The caller has set the step's right-hand operand (op or
// right). A shard body that panics (contained by the scheduler) or a
// cancellation surfaces here as the drain's error; the partial
// destination is left unmerged (or part-merged) for the caller to
// discard.
func (st *stepper) runSharded(cur, dst *bitset.HybridRelation, shards int) error {
	workers := st.sch.Workers()
	nact := cur.Sources()
	dst.Reset()
	st.cur, st.dst = cur, dst
	defer func() { st.cur, st.dst, st.right, st.merging = nil, nil, nil, false }()
	if cap(st.bounds) < shards+1 {
		st.bounds = make([]int, shards+1)
	}
	st.bounds = st.bounds[:shards+1]
	for len(st.srcs) < shards {
		st.srcs = append(st.srcs, nil)
	}
	if len(st.pairs) < shards {
		st.pairs = make([]int64, shards)
	}
	if cap(st.offs) < shards {
		st.offs = make([]int, shards)
	}
	st.offs = st.offs[:shards]
	for i := 0; i <= shards; i++ {
		st.bounds[i] = i * nact / shards
	}
	for i := 0; i < shards; i++ {
		st.sch.Spawn(i%workers, shardTask{idx: i})
	}
	// Shard bodies never Spawn, so the static drain's goroutine count cap
	// (min(workers, shards)) loses nothing.
	if err := st.sch.DrainStatic(); err != nil {
		return err
	}
	total := 0
	var pairs int64
	for i := 0; i < shards; i++ {
		st.offs[i] = total
		total += len(st.srcs[i])
		pairs += st.pairs[i]
	}
	if total < minMergeSources {
		for i := 0; i < shards; i++ {
			dst.AdoptShard(st.srcs[i], st.pairs[i])
		}
		return nil
	}
	dst.BeginAdopt(total)
	st.merging = true
	for i := 0; i < shards; i++ {
		st.sch.Spawn(i%workers, shardTask{idx: i})
	}
	if err := st.sch.DrainStatic(); err != nil {
		return err
	}
	dst.FinishAdopt(pairs)
	return nil
}
