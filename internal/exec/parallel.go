package exec

import (
	"repro/internal/bitset"
	"repro/internal/faultinject"
	"repro/internal/sched"
)

// Shard sizing for parallel join steps. A shard is a contiguous run of the
// input relation's active-source list; row composes are independent, so
// work-stealing over several shards per worker absorbs row-weight skew
// without any per-row bookkeeping.
const (
	// minShardRows is the smallest active-source count worth handing to
	// another goroutine: below it one row range composes in roughly the
	// time a spawn/steal handoff costs.
	minShardRows = 32
	// shardsPerWorker oversubscribes the shard count so stolen shards can
	// rebalance a skewed row-weight distribution.
	shardsPerWorker = 4
)

// shardTask identifies one shard of the current join step by index into
// the stepper's bounds table. Tasks own disjoint row ranges, so bodies
// write disjoint state — the determinism contract of internal/sched.
type shardTask struct{ idx int }

// stepper drives the sharded join steps of one ExecutePlan call on the
// shared work-stealing scheduler (internal/sched). One stepper serves all
// k−1 steps of a plan: per-worker scratches, per-shard source buffers, and
// the scheduler itself persist across steps, so the steady state allocates
// nothing beyond first use.
type stepper struct {
	sch     *sched.Scheduler[shardTask]
	n       int
	scratch []*bitset.ComposeScratch // lazily built, indexed by worker
	cancel  *bitset.CancelFlag       // wired into every scratch; nil when unchecked

	// Per-step state, written by the coordinator between Drain rounds and
	// read by shard bodies during one. Exactly one of op / right is the
	// step's right-hand operand: compose steps set op (relation×CSR),
	// bushy join steps set right (relation×relation).
	cur, dst *bitset.HybridRelation
	op       bitset.CSROperand
	right    *bitset.HybridRelation
	bounds   []int     // shard i covers active positions [bounds[i], bounds[i+1])
	srcs     [][]int32 // per-shard produced sources, reused across steps
	pairs    []int64   // per-shard produced pair counts
}

// newStepper returns a stepper for an n-vertex universe with
// sched.WorkerCount(workers) workers. No goroutines or scratches are
// built until the first sharded step.
func newStepper(n, workers int) *stepper {
	st := &stepper{n: n}
	st.sch = sched.New(workers, st.runShard)
	st.scratch = make([]*bitset.ComposeScratch, st.sch.Workers())
	return st
}

// scr returns worker w's compose scratch, building it on first use. Only
// worker w's goroutine (or the coordinator between Drain rounds, for
// sequential fallback steps through worker 0) ever touches slot w, so no
// locking is needed.
func (st *stepper) scr(w int) *bitset.ComposeScratch {
	if st.scratch[w] == nil {
		st.scratch[w] = bitset.NewComposeScratch(st.n)
		st.scratch[w].SetCancel(st.cancel)
	}
	return st.scratch[w]
}

// setCancel wires a cancellation flag into every scratch (existing and
// future), so the kernels of each subsequent step poll it mid-row-loop.
func (st *stepper) setCancel(f *bitset.CancelFlag) {
	st.cancel = f
	for _, scr := range st.scratch {
		if scr != nil {
			scr.SetCancel(f)
		}
	}
}

// runShard is the scheduler task body: compose (or join, when the step's
// right-hand operand is a relation) the shard's row range into the shared
// destination with the executing worker's scratch, parking the produced
// sources and pair count in the shard's own slots.
func (st *stepper) runShard(worker int, t shardTask) {
	faultinject.Fire("exec.shard")
	lo, hi := st.bounds[t.idx], st.bounds[t.idx+1]
	if st.right != nil {
		st.srcs[t.idx], st.pairs[t.idx] = st.cur.JoinShardInto(
			st.dst, st.right, st.scr(worker), lo, hi, st.srcs[t.idx])
	} else {
		st.srcs[t.idx], st.pairs[t.idx] = st.cur.ComposeShardInto(
			st.dst, st.op, st.scr(worker), lo, hi, st.srcs[t.idx])
	}
}

// compose runs one join step cur ∘ op → dst. Relations with enough active
// sources are partitioned into shards and composed in parallel, then
// merged deterministically (AdoptShard in ascending shard order), so the
// result — rows, active order, and pair count — is bit-identical to
// sequential ComposeInto. Small relations and 1-worker configurations
// fall through to the sequential kernel: parallelism is a performance
// decision per step, never a semantic one.
func (st *stepper) compose(cur, dst *bitset.HybridRelation, op bitset.CSROperand) error {
	nact := cur.Sources()
	if st.sch.Workers() == 1 || nact < 2*minShardRows {
		cur.ComposeInto(dst, op, st.scr(0))
		return nil
	}
	st.op, st.right = op, nil
	return st.runSharded(cur, dst, nact)
}

// join runs one bushy join step cur ∘ right → dst through the same
// sharding machinery as compose, with the relation×relation kernel
// (bitset.JoinShardInto) as the task body. The merge discipline is
// identical, so the result is bit-identical to sequential JoinInto.
func (st *stepper) join(cur, dst, right *bitset.HybridRelation) error {
	nact := cur.Sources()
	if st.sch.Workers() == 1 || nact < 2*minShardRows {
		cur.JoinInto(dst, right, st.scr(0))
		return nil
	}
	st.right = right
	return st.runSharded(cur, dst, nact)
}

// runSharded partitions cur's active sources into shards, runs them on
// the scheduler, and merges the outcome deterministically. The caller has
// set the step's right-hand operand (op or right).
// A shard body that panics (contained by the scheduler) surfaces here as
// the drain's *sched.PanicError; the partial destination is left
// unmerged for the caller to discard.
func (st *stepper) runSharded(cur, dst *bitset.HybridRelation, nact int) error {
	workers := st.sch.Workers()
	shards := workers * shardsPerWorker
	if max := nact / minShardRows; shards > max {
		shards = max
	}
	dst.Reset()
	st.cur, st.dst = cur, dst
	if cap(st.bounds) < shards+1 {
		st.bounds = make([]int, shards+1)
	}
	st.bounds = st.bounds[:shards+1]
	for len(st.srcs) < shards {
		st.srcs = append(st.srcs, nil)
	}
	if len(st.pairs) < shards {
		st.pairs = make([]int64, shards)
	}
	for i := 0; i <= shards; i++ {
		st.bounds[i] = i * nact / shards
	}
	for i := 0; i < shards; i++ {
		st.sch.Spawn(i%workers, shardTask{idx: i})
	}
	// Shard bodies never Spawn, so the static drain's goroutine count cap
	// (min(workers, shards)) loses nothing.
	err := st.sch.DrainStatic()
	st.cur, st.dst, st.right = nil, nil, nil
	if err != nil {
		return err
	}
	for i := 0; i < shards; i++ {
		dst.AdoptShard(st.srcs[i], st.pairs[i])
	}
	return nil
}
