package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/paths"
)

// randomGraph builds a random labeled graph from a packed parameter tuple,
// shared by the property test and the fuzz target (mirrors the census
// equivalence harness in internal/paths).
func randomGraph(seed int64, vertices, labels, edges int) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(vertices, labels)
	for i := 0; i < edges; i++ {
		g.AddEdge(rng.Intn(vertices), rng.Intn(labels), rng.Intn(vertices))
	}
	return g.Freeze()
}

// assertPlanMatchesDense pins one hybrid plan execution bit-identical to
// the legacy dense reference: same pairs, same result count, and — for the
// endpoint plans — the same intermediate sizes step for step.
func assertPlanMatchesDense(t *testing.T, ctx string, g *graph.CSR, p paths.Path, density float64) {
	t.Helper()
	dfwd, dfst := ExecuteDense(g, p, Forward)
	dbwd, dbst := ExecuteDense(g, p, Backward)
	for s := 0; s < len(p); s++ {
		rel, st := ExecutePlan(g, p, Plan{Start: s}, Options{DensityThreshold: density})
		if !rel.EqualRelation(dfwd) {
			t.Fatalf("%s: path %v start %d: hybrid pairs differ from dense reference", ctx, p, s)
		}
		if st.Result != dfst.Result {
			t.Fatalf("%s: path %v start %d: result %d != dense %d", ctx, p, s, st.Result, dfst.Result)
		}
		var want []int64
		switch s {
		case 0:
			want = dfst.Intermediates
		case len(p) - 1:
			want = dbst.Intermediates
		default:
			continue // interior starts have no dense counterpart to pin against
		}
		if len(st.Intermediates) != len(want) {
			t.Fatalf("%s: path %v start %d: %d intermediates, dense has %d",
				ctx, p, s, len(st.Intermediates), len(want))
		}
		for i := range want {
			if st.Intermediates[i] != want[i] {
				t.Fatalf("%s: path %v start %d: intermediate[%d] = %d, dense %d",
					ctx, p, s, i, st.Intermediates[i], want[i])
			}
		}
	}
	if !dbwd.Equal(dfwd) {
		t.Fatalf("%s: dense reference disagrees with itself on %v", ctx, p)
	}
}

// TestExecuteHybridPropertyRandomGraphs is the executor's bit-identity
// property test: on random graphs across sizes, label counts, path
// lengths, density thresholds, and every zig-zag start, ExecutePlan must
// produce exactly the pairs of the retired dense executor.
func TestExecuteHybridPropertyRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		vertices := 2 + rng.Intn(120)
		labels := 1 + rng.Intn(5)
		edges := 1 + rng.Intn(6*vertices)
		g := randomGraph(int64(trial), vertices, labels, edges)
		for _, density := range []float64{0, 1e-9, 0.25, 1.0} {
			n := 1 + rng.Intn(4)
			p := make(paths.Path, n)
			for i := range p {
				p[i] = rng.Intn(labels)
			}
			assertPlanMatchesDense(t,
				fmt.Sprintf("trial %d density %v", trial, density), g, p, density)
		}
	}
}

// FuzzExecEquivalence fuzzes the graph shape, path, plan start, and
// density threshold, asserting hybrid ≡ dense on every input.
func FuzzExecEquivalence(f *testing.F) {
	f.Add(int64(1), 20, 2, 60, uint16(0x1234), 0, float64(0))
	f.Add(int64(2), 50, 3, 200, uint16(0x0042), 1, float64(1))
	f.Add(int64(3), 5, 1, 10, uint16(0x0000), 0, float64(1e-9))
	f.Fuzz(func(t *testing.T, seed int64, vertices, labels, edges int, pathBits uint16, start int, density float64) {
		if vertices < 1 || vertices > 80 || labels < 1 || labels > 4 ||
			edges < 0 || edges > 400 || density < 0 || density > 1 {
			t.Skip()
		}
		g := randomGraph(seed, vertices, labels, edges)
		// Decode up to 4 labels from pathBits, 4 bits each.
		k := 1 + int(pathBits>>12)%4
		p := make(paths.Path, k)
		for i := range p {
			p[i] = int(pathBits>>(4*i)) % labels
		}
		if start < 0 || start >= k {
			t.Skip()
		}
		dref, dst := ExecuteDense(g, p, Forward)
		rel, st := ExecutePlan(g, p, Plan{Start: start}, Options{DensityThreshold: density})
		if !rel.EqualRelation(dref) {
			t.Fatalf("path %v start %d: hybrid differs from dense", p, start)
		}
		if st.Result != dst.Result {
			t.Fatalf("path %v start %d: result %d != dense %d", p, start, st.Result, dst.Result)
		}
	})
}
