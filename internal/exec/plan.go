package exec

import (
	"fmt"

	"repro/internal/paths"
)

// Estimator supplies selectivity estimates to the planner. Both
// *core.PathHistogram (wrapped) and exact censuses satisfy it via
// EstimatorFunc.
type Estimator interface {
	Estimate(p paths.Path) float64
}

// EstimatorFunc adapts a function to the Estimator interface.
type EstimatorFunc func(p paths.Path) float64

// Estimate implements Estimator.
func (f EstimatorFunc) Estimate(p paths.Path) float64 { return f(p) }

// Planner chooses join plans from selectivity estimates. A length-k query
// has k zig-zag plans (one per start position); the planner costs each as
// the sum of its estimated intermediate-segment selectivities and picks
// the cheapest, so the spread between the k costs is exactly where
// estimator quality turns into plan quality.
type Planner struct {
	Est Estimator
	// Cached, when non-nil, reports whether a segment's finished relation
	// (forward orientation) is already materialized in the execution
	// layer's segment-relation cache (internal/relcache). The bushy DP
	// (CostTree/ChooseTree) then treats such segments as zero-build-cost
	// leaves — the executor adopts them whole — which is what lets bushy
	// trees win on warm workloads: a join of two cached segments costs
	// only its consume estimates, while linear growth still pays for
	// every uncached intermediate. The probe must not perturb the cache
	// (relcache.Cache.Contains is side-effect-free). Plan choice becomes
	// cache-state-dependent under this field; results never do — every
	// plan produces the identical relation.
	Cached func(p paths.Path) bool
}

// PlanCost returns the estimated intermediate volume of executing p with
// the plan starting at position start: the sum of estimated selectivities
// of every segment the execution materializes and feeds into a join step,
// excluding the final result (which is plan-independent). With an exact
// estimator it equals ExecutePlan's Stats.Work. It panics on an empty
// path or out-of-range start.
func (pl Planner) PlanCost(p paths.Path, start int) float64 {
	k := len(p)
	if k == 0 {
		panic("exec: cost of empty path query")
	}
	if start < 0 || start >= k {
		panic(fmt.Sprintf("exec: plan start %d out of range [0,%d)", start, k))
	}
	var cost float64
	// Rightward intermediates p[start:j). The full segment p[start:k) is
	// fed into the first prepend step — unless start is 0, in which case
	// it is the final result and costs nothing.
	hi := k
	if start == 0 {
		hi = k - 1
	}
	for j := start + 1; j <= hi; j++ {
		cost += pl.Est.Estimate(p[start:j])
	}
	// Leftward intermediates p[i:k); p[0:k) is the final result.
	for i := start - 1; i >= 1; i-- {
		cost += pl.Est.Estimate(p[i:])
	}
	return cost
}

// Cost returns the estimated intermediate volume of the endpoint plan of
// the given direction — the legacy 2-plan API, now a view over PlanCost.
func (pl Planner) Cost(p paths.Path, dir Direction) float64 {
	return pl.PlanCost(p, dir.Plan(len(p)).Start)
}

// Costs returns the estimated cost of all len(p) zig-zag plans, indexed
// by start position.
func (pl Planner) Costs(p paths.Path) []float64 {
	out := make([]float64, len(p))
	for s := range p {
		out[s] = pl.PlanCost(p, s)
	}
	return out
}

// ChoosePlan returns the cheapest of the k zig-zag plans. Ties are broken
// deterministically: the lowest start index wins, so equal-cost plan sets
// always resolve to the same plan regardless of how the costs were
// produced. (The forward plan, start 0, therefore still wins the
// all-equal case, and it is also the cheapest to execute — endpoint plans
// skip the two linear reversal passes.)
func (pl Planner) ChoosePlan(p paths.Path) Plan {
	return CheapestPlan(pl.Costs(p))
}

// CheapestPlan picks the winning plan from a per-start cost slice (as
// returned by Costs) using ChoosePlan's tie-break rule: strictly lower
// cost wins, and on ties the lowest start index wins. It panics on an
// empty slice.
func CheapestPlan(costs []float64) Plan {
	k := len(costs)
	if k == 0 {
		panic("exec: plan for empty path query")
	}
	best := 0
	for s := 1; s < k; s++ {
		if costs[s] < costs[best] {
			best = s
		}
	}
	return Plan{Start: best}
}

// Choose returns the direction with the lower estimated cost among the
// two endpoint plans (ties go forward, the conventional default) — the
// legacy 2-plan API.
func (pl Planner) Choose(p paths.Path) Direction {
	if pl.Cost(p, Backward) < pl.Cost(p, Forward) {
		return Backward
	}
	return Forward
}
