package exec

import (
	"repro/internal/bitset"
	"repro/internal/paths"
	"repro/internal/relcache"
)

// segCache is one execution's view of the shared segment-relation cache
// (internal/relcache): it pins the representation regime every adopted
// entry must match (universe size and sparse→dense promotion limit, both
// fixed by the call's graph and Options.DensityThreshold) and tallies the
// call's hit/miss counts for Stats. A nil *segCache is the cache-disabled
// mode — every method no-ops — so the executor threads it unconditionally.
//
// Only segments of length ≥ 2 are cached: a single-label relation is a
// near-verbatim copy of the graph's CSR adjacency, so caching it would
// spend budget to replace one copy with another.
type segCache struct {
	c            *relcache.Cache
	n            int // vertex universe of the executing graph
	limit        int // required sparse promotion limit of adoptable entries
	hits, misses int
}

// newSegCache returns the execution view over c, or nil when c is nil.
func newSegCache(c *relcache.Cache, n int, density float64) *segCache {
	if c == nil {
		return nil
	}
	return &segCache{c: c, n: n, limit: bitset.SparseLimit(n, density)}
}

// adopt materializes the cached relation of the segment in the wanted
// orientation into dst and reports whether an adoptable entry existed.
// The cache stores one orientation per label sequence: a stored
// orientation matching the wanted one copies verbatim, a mismatch
// derives the inverse (ReverseInto) — bit-identical to recomputing,
// because every kernel picks a row's representation purely from its
// final population against dst's promotion limit. Entries from a
// different representation regime — another universe or promotion limit
// — are ignored rather than adopted, so execution stays bit-identical to
// computing the segment from scratch no matter what the cache holds.
func (sc *segCache) adopt(seg paths.Path, reversed bool, dst *bitset.HybridRelation) bool {
	if sc == nil || len(seg) < 2 {
		return false
	}
	rel, stored, ok := sc.c.Get(seg)
	if !ok || rel.Universe() != sc.n || rel.SparseMax() != sc.limit {
		return false
	}
	if stored == reversed {
		rel.CopyInto(dst)
	} else {
		rel.ReverseInto(dst)
	}
	sc.hits++
	return true
}

// put stores a freshly materialized segment relation (length ≥ 2) and
// counts the miss: every put is a segment that was computed because no
// adoptable entry existed.
func (sc *segCache) put(seg paths.Path, reversed bool, rel *bitset.HybridRelation) {
	if sc == nil || len(seg) < 2 {
		return
	}
	sc.c.Put(seg, reversed, rel)
	sc.misses++
}

// counters returns the execution's hit/miss tallies (zero for the
// cache-disabled nil view).
func (sc *segCache) counters() (hits, misses int) {
	if sc == nil {
		return 0, 0
	}
	return sc.hits, sc.misses
}
