package exec

import (
	"testing"

	"repro/internal/paths"
)

// TestCheapestPlanTieBreak pins the deterministic tie-break rule: strictly
// lower cost wins, and among equal costs the lowest start index wins —
// including the case where an interior start ties the backward plan, which
// an earlier endpoint-preferring rule resolved differently.
func TestCheapestPlanTieBreak(t *testing.T) {
	cases := []struct {
		costs []float64
		want  int
	}{
		{[]float64{5}, 0},
		{[]float64{5, 5, 5}, 0},       // all equal: forward
		{[]float64{5, 3, 3, 5}, 1},    // interior tie: lowest interior
		{[]float64{3, 4, 3}, 0},       // endpoint tie: forward
		{[]float64{2, 1, 1}, 1},       // interior ties backward: interior wins
		{[]float64{9, 4, 2, 4}, 2},    // unique minimum
		{[]float64{1, 0, 0, 0, 1}, 1}, // run of zeros: first
	}
	for _, c := range cases {
		if got := CheapestPlan(c.costs).Start; got != c.want {
			t.Errorf("CheapestPlan(%v) = %d, want %d", c.costs, got, c.want)
		}
	}
	// ChoosePlan must route through the same rule.
	pl := Planner{Est: EstimatorFunc(func(p paths.Path) float64 { return float64(len(p)) })}
	p := paths.Path{0, 0, 0}
	if got, want := pl.ChoosePlan(p), CheapestPlan(pl.Costs(p)); got != want {
		t.Errorf("ChoosePlan = %v, CheapestPlan(Costs) = %v", got, want)
	}
}
