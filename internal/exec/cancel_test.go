package exec

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/paths"
	"repro/internal/sched"
)

// checkedOptions returns options wiring a fresh pool and canceller for an
// n-vertex graph.
func checkedOptions(n, workers int) (Options, *RelPool, *Canceller) {
	pool := NewRelPool(n, 0)
	c := &Canceller{}
	return Options{Workers: workers, Pool: pool, Cancel: c}, pool, c
}

// TestExecuteCheckedMatchesUnchecked pins that the checked entry point
// with a pool and a never-fired canceller is behavior-free: relation and
// stats bit-identical to the legacy path, and the pool back to baseline
// once the result is released.
func TestExecuteCheckedMatchesUnchecked(t *testing.T) {
	g := randomGraph(11, 200, 3, 2500)
	p := paths.Path{0, 1, 2, 0}
	for _, workers := range []int{1, 4} {
		for s := range p {
			ref, refSt := ExecutePlan(g, p, Plan{Start: s}, Options{Workers: workers})
			opt, pool, _ := checkedOptions(g.NumVertices(), workers)
			rel, st, err := ExecutePlanChecked(g, p, Plan{Start: s}, opt)
			if err != nil {
				t.Fatalf("workers=%d start=%d: checked execution failed: %v", workers, s, err)
			}
			if !rel.Equal(ref) {
				t.Fatalf("workers=%d start=%d: checked relation differs", workers, s)
			}
			assertStatsEqual(t, "checked", st, refSt)
			if got := pool.InUse(); got != 1 {
				t.Fatalf("workers=%d start=%d: %d relations in use, want 1 (the result)", workers, s, got)
			}
			pool.Put(rel)
			if got := pool.InUse(); got != 0 {
				t.Fatalf("workers=%d start=%d: %d relations in use after release", workers, s, got)
			}
		}
	}
}

// TestExecuteCheckedPreCancelled pins the admission-edge behavior: an
// already-cancelled canceller aborts before any relation materializes.
func TestExecuteCheckedPreCancelled(t *testing.T) {
	g := randomGraph(3, 100, 2, 500)
	opt, pool, c := checkedOptions(g.NumVertices(), 2)
	c.Cancel(nil)
	rel, _, err := ExecutePlanChecked(g, paths.Path{0, 1}, Plan{}, opt)
	if rel != nil || !errors.Is(err, ErrCancelled) {
		t.Fatalf("got rel=%v err=%v, want nil rel and ErrCancelled", rel, err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d relations leaked by pre-cancelled execution", pool.InUse())
	}
}

// TestExecuteCheckedBudget pins budget enforcement: a byte budget below
// the query's intermediate sizes aborts with ErrBudgetExceeded and leaks
// nothing, for both the zig-zag and the bushy executor.
func TestExecuteCheckedBudget(t *testing.T) {
	g := randomGraph(5, 300, 2, 5000)
	p := paths.Path{0, 1, 0}
	opt, pool, _ := checkedOptions(g.NumVertices(), 2)
	opt.MaxResultBytes = 64 // far below any materialized relation
	rel, _, err := ExecutePlanChecked(g, p, Plan{}, opt)
	if rel != nil || !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("plan: got rel=%v err=%v, want ErrBudgetExceeded", rel, err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("plan: %d relations leaked", pool.InUse())
	}

	tree := &PlanTree{Lo: 0, Hi: 3, Start: -1,
		Left:  &PlanTree{Lo: 0, Hi: 2, Start: 0},
		Right: &PlanTree{Lo: 2, Hi: 3, Start: 2},
	}
	topt, tpool, _ := checkedOptions(g.NumVertices(), 4)
	topt.MaxResultBytes = 64
	rel, _, err = ExecuteTreeChecked(g, p, tree, topt)
	if rel != nil || !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("tree: got rel=%v err=%v, want ErrBudgetExceeded", rel, err)
	}
	if tpool.InUse() != 0 {
		t.Fatalf("tree: %d relations leaked", tpool.InUse())
	}
}

// TestExecuteCheckedDeadline drives the context bridge: an injected delay
// at every step boundary makes a short context deadline expire mid-query,
// and the execution must surface ErrDeadlineExceeded without leaks.
func TestExecuteCheckedDeadline(t *testing.T) {
	faultinject.Install(faultinject.NewInjector(faultinject.Rule{
		Site: "exec.step", Action: faultinject.ActDelay, Delay: 10 * time.Millisecond,
	}))
	t.Cleanup(faultinject.Uninstall)
	g := randomGraph(13, 200, 2, 2000)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	canceller, release := NewCancellerContext(ctx)
	defer release()
	pool := NewRelPool(g.NumVertices(), 0)
	rel, _, err := ExecutePlanChecked(g, paths.Path{0, 1, 0, 1}, Plan{},
		Options{Workers: 2, Cancel: canceller, Pool: pool})
	if rel != nil || !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("got rel=%v err=%v, want ErrDeadlineExceeded", rel, err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d relations leaked by deadline abort", pool.InUse())
	}
}

// TestChaosPanicContainment injects a worker panic into a sharded join
// step and asserts the containment contract end to end: the panic comes
// back as a typed *sched.PanicError (never a crash), and the abort path
// releases every pooled relation.
func TestChaosPanicContainment(t *testing.T) {
	g := randomGraph(7, 400, 2, 6000) // dense enough that steps shard
	p := paths.Path{0, 1, 0, 1}
	for _, workers := range []int{2, 8} {
		faultinject.Install(faultinject.NewInjector(faultinject.Rule{
			Site: "exec.shard", Skip: 2, Count: 1, Action: faultinject.ActPanic,
		}))
		opt, pool, _ := checkedOptions(g.NumVertices(), workers)
		rel, _, err := ExecutePlanChecked(g, p, Plan{}, opt)
		faultinject.Uninstall()
		var pe *sched.PanicError
		if rel != nil || !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got rel=%v err=%v, want *sched.PanicError", workers, rel, err)
		}
		if !errors.Is(err, sched.ErrStopped) {
			t.Fatalf("workers=%d: panic error does not unwrap to sched.ErrStopped", workers)
		}
		if pool.InUse() != 0 {
			t.Fatalf("workers=%d: %d relations leaked by panic abort", workers, pool.InUse())
		}
	}
}

// TestChaosTreePanicContainment is the bushy-plan variant: a panic in one
// subtree's shard must cancel the sibling subtree and surface typed.
func TestChaosTreePanicContainment(t *testing.T) {
	g := randomGraph(7, 400, 2, 6000)
	p := paths.Path{0, 1, 0, 1}
	tree := &PlanTree{Lo: 0, Hi: 4, Start: -1,
		Left:  &PlanTree{Lo: 0, Hi: 2, Start: 0},
		Right: &PlanTree{Lo: 2, Hi: 4, Start: 2},
	}
	faultinject.Install(faultinject.NewInjector(faultinject.Rule{
		Site: "exec.shard", Skip: 1, Count: 1, Action: faultinject.ActPanic,
	}))
	t.Cleanup(faultinject.Uninstall)
	opt, pool, _ := checkedOptions(g.NumVertices(), 4)
	rel, _, err := ExecuteTreeChecked(g, p, tree, opt)
	var pe *sched.PanicError
	if rel != nil || !errors.As(err, &pe) {
		t.Fatalf("got rel=%v err=%v, want *sched.PanicError", rel, err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d relations leaked by tree panic abort", pool.InUse())
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (small slack for runtime helpers) or the deadline passes.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count %d did not return to baseline %d", n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCancelLeakHygiene is the abort-hygiene stress: 100 executions per
// worker count, alternating pre-cancelled, panic-injected, and
// timer-cancelled aborts, after which the goroutine count and the pool
// occupancy must be back at baseline. Run under -race in CI.
func TestCancelLeakHygiene(t *testing.T) {
	g := randomGraph(17, 300, 2, 4000)
	p := paths.Path{0, 1, 0, 1}
	base := runtime.NumGoroutine()
	for _, workers := range []int{1, 2, 4, 8} {
		pool := NewRelPool(g.NumVertices(), 0)
		for i := 0; i < 100; i++ {
			c := &Canceller{}
			opt := Options{Workers: workers, Pool: pool, Cancel: c}
			switch i % 3 {
			case 0:
				c.Cancel(nil)
			case 1:
				if workers > 1 {
					faultinject.Install(faultinject.NewInjector(faultinject.Rule{
						Site: "exec.shard", Skip: i % 5, Count: 1, Action: faultinject.ActPanic,
					}))
				}
			case 2:
				timer := time.AfterFunc(time.Duration(i%4)*100*time.Microsecond,
					func() { c.Cancel(ErrDeadlineExceeded) })
				defer timer.Stop()
			}
			rel, _, err := ExecutePlanChecked(g, p, Plan{Start: i % len(p)}, opt)
			faultinject.Uninstall()
			if err == nil {
				pool.Put(rel) // survived (e.g. timer fired too late): release
			} else if rel != nil {
				t.Fatalf("workers=%d iter=%d: non-nil relation alongside error %v", workers, i, err)
			}
		}
		if pool.InUse() != 0 {
			t.Fatalf("workers=%d: %d relations still checked out after 100 aborts", workers, pool.InUse())
		}
	}
	waitForGoroutines(t, base)
}

// FuzzCancelEquivalence pins two properties across fuzzed graphs and
// queries: wiring a canceller and pool that never fire is bit-identical
// to the unchecked path, and cancelling after completion affects nothing
// (the relation already returned is untouched).
func FuzzCancelEquivalence(f *testing.F) {
	f.Add(int64(1), 80, 2, 400, uint16(0x0012), uint8(2))
	f.Add(int64(9), 150, 3, 1200, uint16(0x0321), uint8(5))
	f.Add(int64(4), 40, 1, 100, uint16(0x0000), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, vertices, labels, edges int, pathBits uint16, workers uint8) {
		if vertices < 1 || vertices > 250 || labels < 1 || labels > 4 || edges < 0 || edges > 2000 {
			t.Skip()
		}
		g := randomGraph(seed, vertices, labels, edges)
		k := 1 + int(pathBits>>12)%4
		p := make(paths.Path, k)
		for i := range p {
			p[i] = int(pathBits>>(4*i)) % labels
		}
		w := int(workers%8) + 1
		start := rand.New(rand.NewSource(seed)).Intn(k)
		ref, refSt := ExecutePlan(g, p, Plan{Start: start}, Options{Workers: w})
		opt, pool, c := checkedOptions(g.NumVertices(), w)
		rel, st, err := ExecutePlanChecked(g, p, Plan{Start: start}, opt)
		if err != nil {
			t.Fatalf("checked execution failed: %v", err)
		}
		if !rel.Equal(ref) || st.Result != refSt.Result || st.Work != refSt.Work {
			t.Fatalf("path %v start %d workers %d: checked diverged from unchecked", p, start, w)
		}
		// Cancel after completion: the returned relation must be unaffected.
		c.Cancel(nil)
		if !rel.Equal(ref) {
			t.Fatalf("path %v: post-completion cancel mutated the result", p)
		}
		pool.Put(rel)
		if pool.InUse() != 0 {
			t.Fatalf("pool still reports %d in use", pool.InUse())
		}
	})
}
