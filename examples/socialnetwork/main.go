// Social-network scenario: the Moreno Health setting that motivates the
// paper's Figure 1. An adolescent friendship network where edge labels are
// friendship ranks ("1" = best friend … "6"), label frequencies are
// strongly skewed, and a query optimizer wants selectivity estimates for
// friendship-chain path queries under a tight statistics budget.
//
// The example builds one histogram per ordering method at the same bucket
// budget and shows the accuracy gap the paper reports.
package main

import (
	"fmt"
	"log"

	"repro/pathsel"
)

func main() {
	// Moreno-Health-like friendship network (scaled for a quick demo).
	g, err := pathsel.GenerateDataset("Moreno health", 0.15, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friendship network: %d people, %d nominations, ranks %v\n\n",
		g.NumVertices(), g.NumEdges(), g.Labels())

	const k, budget = 3, 32
	fmt.Printf("statistics budget: %d buckets for all paths up to length %d\n\n", budget, k)

	queries := []string{
		"1/1",   // best friend of a best friend
		"1/1/1", // best-friend chain of length 3
		"6/6",   // weakest-tie chain
		"1/6/1", // strong-weak-strong pattern
		"2/3",
	}

	fmt.Printf("%-12s", "query")
	for _, method := range pathsel.Orderings() {
		fmt.Printf("%12s", method)
	}
	fmt.Printf("%10s\n", "exact")

	ests := map[string]*pathsel.Estimator{}
	for _, method := range pathsel.Orderings() {
		est, err := pathsel.Build(g, pathsel.Config{
			MaxPathLength: k,
			Ordering:      method,
			Buckets:       budget,
		})
		if err != nil {
			log.Fatal(err)
		}
		ests[method] = est
	}
	for _, q := range queries {
		fmt.Printf("%-12s", q)
		for _, method := range pathsel.Orderings() {
			e, err := ests[method].Estimate(q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.1f", e)
		}
		f, err := g.TrueSelectivity(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d\n", f)
	}

	fmt.Println("\nwhole-domain accuracy (mean error rate, lower is better):")
	for _, method := range pathsel.Orderings() {
		acc := ests[method].Evaluate()
		fmt.Printf("  %-12s %.4f\n", method, acc.MeanErrorRate)
	}
}
