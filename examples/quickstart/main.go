// Quickstart: build a small labeled graph, construct a sum-based-ordered
// V-Optimal path histogram, and compare estimates with exact
// selectivities.
package main

import (
	"fmt"
	"log"

	"repro/pathsel"
)

func main() {
	// A toy collaboration graph: people 0..7, labels "knows" and "cites".
	g := pathsel.NewGraph(8, []string{"knows", "cites"})
	edges := []struct {
		src   int
		label string
		dst   int
	}{
		{0, "knows", 1}, {1, "knows", 2}, {2, "knows", 3}, {3, "knows", 4},
		{4, "knows", 5}, {0, "knows", 2}, {1, "knows", 3},
		{0, "cites", 5}, {1, "cites", 5}, {2, "cites", 5}, {3, "cites", 6},
		{5, "cites", 6}, {6, "cites", 7}, {5, "knows", 7},
	}
	for _, e := range edges {
		if _, err := g.AddEdge(e.src, e.label, e.dst); err != nil {
			log.Fatal(err)
		}
	}

	// Build a histogram estimator: all label paths up to length 3,
	// sum-based domain ordering (the paper's contribution), V-Optimal
	// buckets.
	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 3,
		Ordering:      pathsel.OrderingSumBased,
		Histogram:     pathsel.HistogramVOptimal,
		Buckets:       6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("domain: %d label paths compressed into %d buckets\n\n",
		est.DomainSize(), est.Buckets())

	for _, q := range []string{
		"knows", "cites",
		"knows/knows", "knows/cites", "cites/cites",
		"knows/knows/knows", "knows/cites/cites",
	} {
		e, err := est.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		f, err := g.TrueSelectivity(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s estimate %6.2f   exact %3d\n", q, e, f)
	}

	acc := est.Evaluate()
	fmt.Printf("\nwhole-domain mean error rate: %.4f over %d paths\n",
		acc.MeanErrorRate, acc.Paths)
}
