// Optimizer scenario: the use case the paper's introduction motivates —
// cardinality estimation inside a graph query optimizer, through the
// public pathsel facade only. A length-k path query has k zig-zag join
// plans (start at any label position and grow both ways); the estimator
// costs each plan from its histogram, picks the cheapest, and executes it
// on the hybrid engine. The example prints the estimated cost of every
// candidate plan next to its exact cost (recomputed from true segment
// selectivities), so estimation errors and the plans they cost are both
// visible.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/pathsel"
)

// exactPlanCost recomputes a plan's true intermediate volume from exact
// segment selectivities — the oracle the histogram-driven choice is
// judged against. It mirrors the executor's cost model: growing right
// from start materializes every segment start..j, then prepending
// materializes every suffix i..k; the full path is the result, not cost.
func exactPlanCost(g *pathsel.Graph, segs []string, start int) int64 {
	var cost int64
	query := func(lo, hi int) int64 {
		f, err := g.TrueSelectivity(strings.Join(segs[lo:hi], "/"))
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	hi := len(segs)
	if start == 0 {
		hi--
	}
	for j := start + 1; j <= hi; j++ {
		cost += query(start, j)
	}
	for i := start - 1; i >= 1; i-- {
		cost += query(i, len(segs))
	}
	return cost
}

func main() {
	g, err := pathsel.GenerateDataset("Moreno health", 0.12, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 3,
		Ordering:      pathsel.OrderingSumBased,
		Buckets:       24,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistics: %d buckets over %d paths (sum-based ordering)\n\n",
		est.Buckets(), est.DomainSize())

	queries := []string{"1/2/3", "5/6/1", "2/2/4", "6/1/1", "4/4/2"}
	agree := 0
	for _, q := range queries {
		segs := strings.Split(q, "/")
		plan, err := est.PlanQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		st, err := est.ExecuteQuery(q)
		if err != nil {
			log.Fatal(err)
		}

		// Oracle: the plan with the lowest exact intermediate volume.
		bestStart, bestCost := 0, int64(-1)
		exact := make([]int64, len(segs))
		for s := range segs {
			exact[s] = exactPlanCost(g, segs, s)
			if bestCost < 0 || exact[s] < bestCost {
				bestStart, bestCost = s, exact[s]
			}
		}
		if exact[plan.Start] == bestCost {
			agree++
		}

		fmt.Printf("query %s → %s (result %d pairs, actual work %d)\n",
			q, plan.Description, st.Result, st.Work)
		for s, c := range plan.Costs {
			mark := ""
			if s == plan.Start {
				mark = "←chosen"
			}
			if s == bestStart {
				mark += " ←oracle"
			}
			fmt.Printf("  start %d: estimated %7.1f  exact %5d %s\n", s, c, exact[s], mark)
		}
	}
	fmt.Printf("\nchosen plans matched the oracle's cost on %d/%d queries\n", agree, len(queries))
	fmt.Println(strings.Repeat("-", 40))
	fmt.Println("histogram footprint:", est.Buckets(), "buckets vs", est.DomainSize(), "exact counters")

	// Bushy plan search: the same histogram, but the planner may now
	// split a query into two independently built segments and join them
	// relation×relation — a plan shape no zig-zag start can express. The
	// planner falls back to the best zig-zag plan whenever linear growth
	// is estimated cheaper, so every divergence below is a case where
	// interior-segment estimates changed the winner.
	fmt.Println(strings.Repeat("-", 40))
	fmt.Println("bushy plan search (Config.BushyPlans, length-4 queries):")
	bushy, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 4,
		Ordering:      pathsel.OrderingSumBased,
		Buckets:       24,
		BushyPlans:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	linear, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 4,
		Ordering:      pathsel.OrderingSumBased,
		Buckets:       24,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []string{"1/2/3/1", "2/3/3/1", "4/1/5/1", "2/2/4/4"} {
		bp, err := bushy.PlanQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		bst, err := bushy.ExecuteQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		lst, err := linear.ExecuteQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		shape := "linear"
		if bp.Tree != nil && !bp.Tree.IsLeaf() {
			shape = "bushy"
		}
		fmt.Printf("  query %s → %s plan %s (work %d vs linear %d, result %d)\n",
			q, shape, bp.Description, bst.Work, lst.Work, bst.Result)
		if bst.Result != lst.Result {
			log.Fatalf("plan shape changed the result: %d vs %d", bst.Result, lst.Result)
		}
	}
}
