// Optimizer scenario: the use case the paper's introduction motivates —
// cardinality estimation inside a graph query optimizer. A path query
// l1/l2/l3 can be evaluated left-to-right or right-to-left; the cheaper
// direction starts from the more selective end. The example shows a tiny
// cost-based chooser that picks the direction from histogram estimates and
// compares its choices against the exact-statistics oracle.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/pathsel"
)

// direction decides evaluation order for a 2-segment split of a path:
// compare the selectivity of the leading and trailing segment and start
// from the smaller one.
func direction(first, second float64) string {
	if first <= second {
		return "left-to-right"
	}
	return "right-to-left"
}

func main() {
	g, err := pathsel.GenerateDataset("Moreno health", 0.12, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 2, // the optimizer only needs segment statistics
		Ordering:      pathsel.OrderingSumBased,
		Buckets:       12,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistics: %d buckets over %d paths (sum-based ordering)\n\n",
		est.Buckets(), est.DomainSize())

	queries := [][2]string{
		{"1/2", "3"}, {"1", "5/6"}, {"2/2", "4"}, {"6", "1/1"}, {"4/4", "2"},
	}
	agree := 0
	for _, q := range queries {
		left, right := q[0], q[1]
		full := left + "/" + right

		eLeft, err := est.Estimate(left)
		if err != nil {
			log.Fatal(err)
		}
		eRight, err := est.Estimate(right)
		if err != nil {
			log.Fatal(err)
		}
		fLeft, err := g.TrueSelectivity(left)
		if err != nil {
			log.Fatal(err)
		}
		fRight, err := g.TrueSelectivity(right)
		if err != nil {
			log.Fatal(err)
		}

		chosen := direction(eLeft, eRight)
		oracle := direction(float64(fLeft), float64(fRight))
		match := "✗"
		if chosen == oracle {
			agree++
			match = "✓"
		}
		fmt.Printf("query %-8s split %-5s | %-5s  est(%5.1f | %5.1f)  exact(%4d | %4d)  plan=%-13s oracle=%-13s %s\n",
			full, left, right, eLeft, eRight, fLeft, fRight, chosen, oracle, match)
	}
	fmt.Printf("\nplan agreement with exact-statistics oracle: %d/%d\n", agree, len(queries))
	fmt.Println(strings.Repeat("-", 40))
	fmt.Println("histogram footprint:", est.Buckets(), "buckets vs", est.DomainSize(), "exact counters")
}
