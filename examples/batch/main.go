// Batch scenario: serving a query workload through the segment-relation
// cache. Real path-query traffic repeats itself — the same label
// subsequences appear in query after query — so the batch executor
// (pathsel.Estimator.ExecuteBatch) runs the whole workload through one
// shared cache: the first query to touch a segment materializes it, every
// later query adopts the finished relation by copy. The example runs a
// 50-query workload twice — cold (caching disabled) and through a shared
// persistent cache — and prints the hit rate and wall clock of each pass,
// plus the second, fully warm pass where every query is answered by a
// whole-query cache hit.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/pathsel"
)

func main() {
	g, err := pathsel.GenerateDataset("SNAP-FF", 0.08, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// CacheBytes gives the estimator a persistent segment cache that
	// every ExecuteQuery and ExecuteBatch call keeps warming.
	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 3,
		Buckets:       32,
		CacheBytes:    32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A 50-query workload cycling through 8 distinct queries that share
	// two-label segments — the shape real traffic has.
	labels := g.Labels()
	pool := []string{
		labels[0] + "/" + labels[1] + "/" + labels[2],
		labels[1] + "/" + labels[2] + "/" + labels[0],
		labels[0] + "/" + labels[1] + "/" + labels[3],
		labels[2] + "/" + labels[0] + "/" + labels[1],
		labels[1] + "/" + labels[2] + "/" + labels[3],
		labels[3] + "/" + labels[0] + "/" + labels[1],
		labels[0] + "/" + labels[0] + "/" + labels[1],
		labels[2] + "/" + labels[3] + "/" + labels[0],
	}
	var workload []pathsel.Query
	for i := 0; i < 50; i++ {
		workload = append(workload, pathsel.Query(pool[i%len(pool)]))
	}

	run := func(name string, opt pathsel.BatchOptions) *pathsel.BatchResult {
		start := time.Now()
		res, err := est.ExecuteBatch(workload, opt)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		var totalWork int64
		for _, r := range res.Results {
			totalWork += r.Work
		}
		if res.Cached {
			fmt.Printf("%-12s %8.2fms  hit rate %5.1f%%  (%d hits, %d misses, %d entries, %.1f MiB)\n",
				name, float64(elapsed.Microseconds())/1000, 100*res.Cache.HitRate(),
				res.Cache.Hits, res.Cache.Misses, res.Cache.Entries,
				float64(res.Cache.Bytes)/(1<<20))
		} else {
			fmt.Printf("%-12s %8.2fms  (caching disabled)\n",
				name, float64(elapsed.Microseconds())/1000)
		}
		return res
	}

	fmt.Printf("\nworkload: %d queries, %d distinct\n\n", len(workload), len(pool))
	cold := run("cold", pathsel.BatchOptions{CacheBytes: -1}) // baseline: no cache
	run("first pass", pathsel.BatchOptions{})                 // populates the shared cache
	second := run("second pass", pathsel.BatchOptions{})      // fully warm: whole-query hits

	// Caching never changes results — only how they were produced.
	for i := range workload {
		if cold.Results[i].Result != second.Results[i].Result {
			log.Fatalf("query %d: warm result %d != cold %d",
				i, second.Results[i].Result, cold.Results[i].Result)
		}
	}
	warmHits := 0
	for _, r := range second.Results {
		if r.CacheHits > 0 && r.Work == 0 {
			warmHits++
		}
	}
	fmt.Printf("\nwarm pass answered %d/%d queries as whole-query cache hits\n",
		warmHits, len(workload))
}
