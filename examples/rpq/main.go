// RPQ scenario: regular path queries through the parse-once Compile
// API. A pattern like a/(b|c)/d?/e{1,3} is compiled once into an
// expression DAG — alternation as a union of label relations, `?` as an
// identity-skip edge, `{m,n}` as unrolled powers that publish under the
// same cache keys concrete queries use — and the handle is executed
// many times without reparsing. The example compiles a few patterns,
// compares the compiled estimate against the exact answer, shows that a
// repetition's unrolled powers warm the relation cache for concrete
// queries (and vice versa), and runs a compiled workload through the
// parse-once batch executor.
package main

import (
	"fmt"
	"log"

	"repro/pathsel"
)

func main() {
	g, err := pathsel.GenerateDataset("SNAP-FF", 0.08, 7)
	if err != nil {
		log.Fatal(err)
	}
	labels := g.Labels()
	fmt.Printf("graph: %d vertices, %d edges, labels %v\n", g.NumVertices(), g.NumEdges(), labels)

	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: 3,
		Buckets:       32,
		CacheBytes:    32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	a, b, c, d := labels[0], labels[1], labels[2], labels[3]
	patterns := []string{
		a + "/(" + b + "|" + c + ")",            // alternation
		a + "?/" + b + "/" + c,                  // optional first step
		b + "{1,3}",                             // bounded repetition
		a + "/(" + b + "|" + c + ")/" + d + "?", // the full grammar in one query
	}

	fmt.Println("\ncompile once, execute and estimate from the same handle:")
	for _, p := range patterns {
		x, err := est.Compile(p)
		if err != nil {
			log.Fatal(err)
		}
		st, err := x.Execute()
		if err != nil {
			log.Fatal(err)
		}
		exact, err := g.TruePatternSelectivity(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s lengths [%d,%d]  estimate %8.0f  exact %6d  result %6d  plan %s\n",
			x.Pattern(), x.MinLen(), x.MaxLen(), x.Estimate(), exact, st.Result, st.Plan.Description)
	}

	// The repetition b{1,3} unrolled b² and b³ into the persistent cache
	// under the same keys a concrete b/b query uses — so the concrete
	// query is answered by adoption, not recomputation.
	st, err := est.ExecuteQuery(b + "/" + b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcrete %s/%s after b{1,3}: %d cache hits, %d misses (adopts the unrolled power)\n",
		b, b, st.CacheHits, st.CacheMisses)

	// Parse-once batch: compile the workload a single time, execute the
	// handles as one batch through the shared cache.
	xs := make([]*pathsel.Expr, len(patterns))
	for i, p := range patterns {
		if xs[i], err = est.Compile(p); err != nil {
			log.Fatal(err)
		}
	}
	res, err := est.ExecuteExprBatch(xs, pathsel.BatchOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncompiled batch:")
	for _, r := range res.Results {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf("  %-24s result %6d  hits %d\n", r.Query, r.Result, r.CacheHits)
	}
	fmt.Printf("cache after batch: %.0f%% hit rate over %d lookups\n",
		100*res.Cache.HitRate(), res.Cache.Hits+res.Cache.Misses)
}
