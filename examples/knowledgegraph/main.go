// Knowledge-graph scenario: a DBpedia-like graph with hub entities and
// skewed predicate frequencies. The example sweeps the bucket budget and
// shows how estimation accuracy degrades as the statistics budget shrinks
// — and how the sum-based ordering degrades the slowest, which is the
// paper's headline finding for low-budget histograms.
package main

import (
	"fmt"
	"log"

	"repro/pathsel"
)

func main() {
	g, err := pathsel.GenerateDataset("DBpedia (subgraph)", 0.03, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge graph: %d entities, %d triples, %d predicates\n\n",
		g.NumVertices(), g.NumEdges(), len(g.Labels()))

	const k = 3
	probe, err := pathsel.Build(g, pathsel.Config{MaxPathLength: k, Buckets: 1})
	if err != nil {
		log.Fatal(err)
	}
	domain := probe.DomainSize()
	fmt.Printf("path domain: %d label paths (k ≤ %d)\n\n", domain, k)

	budgets := []int{int(domain / 4), int(domain / 16), int(domain / 64)}
	fmt.Printf("%-10s", "buckets")
	for _, method := range pathsel.Orderings() {
		fmt.Printf("%12s", method)
	}
	fmt.Println()
	for _, beta := range budgets {
		if beta < 1 {
			beta = 1
		}
		fmt.Printf("%-10d", beta)
		for _, method := range pathsel.Orderings() {
			est, err := pathsel.Build(g, pathsel.Config{
				MaxPathLength: k,
				Ordering:      method,
				Buckets:       beta,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.4f", est.Evaluate().MeanErrorRate)
		}
		fmt.Println()
	}
	fmt.Println("\n(cells are mean error rates over the whole path domain; lower is better)")
}
