// Planner scenario: the full loop from statistics to executed plans. This
// example reaches below the public facade into the engine packages
// (allowed within this module) to show what the experiments measure: a
// histogram-driven planner choosing join directions, the executor carrying
// them out, and the actual intermediate-result work compared against the
// exact-statistics oracle.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/ordering"
	"repro/internal/paths"
)

func main() {
	g := dataset.Generate(dataset.Table3()[0], 0.1, 3).Freeze()
	fmt.Printf("graph: %d vertices, %d edges, %d labels\n\n",
		g.NumVertices(), g.NumEdges(), g.NumLabels())

	const k = 3
	census := paths.NewCensusParallel(g, k, 0)
	ph, _, err := core.BuildForGraph(g, ordering.MethodSumBased, core.BuilderVOptimal, k, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistics: %d-bucket sum-based V-Optimal histogram over %d paths\n\n",
		ph.Buckets(), census.Size())

	planner := exec.Planner{Est: exec.EstimatorFunc(ph.Estimate)}
	oracle := exec.Planner{Est: exec.EstimatorFunc(func(p paths.Path) float64 {
		return float64(census.Selectivity(p))
	})}

	queries := []paths.Path{
		{0, 1, 2}, {5, 0, 0}, {1, 1, 1}, {3, 4, 0}, {0, 5, 5}, {2, 0, 1},
	}
	var chosenWork, bestWork int64
	for _, q := range queries {
		dir := planner.Choose(q)
		_, st := exec.Execute(g, q, dir)

		odir := oracle.Choose(q)
		_, ost := exec.Execute(g, q, odir)

		chosenWork += st.Work
		bestWork += ost.Work
		match := " "
		if dir == odir {
			match = "✓"
		}
		fmt.Printf("query %-8s plan=%-8s work=%-7d oracle=%-8s optimal-work=%-7d %s (result %d pairs)\n",
			q.Key(), dir, st.Work, odir, ost.Work, match, st.Result)
	}
	fmt.Printf("\ntotal executed work: %d vs oracle %d (%.2fx)\n",
		chosenWork, bestWork, float64(chosenWork)/float64(bestWork))
}
