// Planner scenario: the full loop from statistics to executed plans. This
// example reaches below the public facade into the engine packages
// (allowed within this module) to show what the experiments measure: a
// histogram-driven planner choosing among every zig-zag join plan of each
// query — one plan per join start position, not just forward/backward —
// the hybrid executor carrying the choice out, and the actual
// intermediate-result volume of every plan compared against the
// exact-statistics oracle.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/ordering"
	"repro/internal/paths"
)

func main() {
	g := dataset.Generate(dataset.Table3()[0], 0.1, 3).Freeze()
	fmt.Printf("graph: %d vertices, %d edges, %d labels\n\n",
		g.NumVertices(), g.NumEdges(), g.NumLabels())

	const k = 3
	census := paths.NewCensusParallel(g, k, 0)
	ph, _, err := core.BuildForGraph(g, ordering.MethodSumBased, core.BuilderVOptimal, k, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistics: %d-bucket sum-based V-Optimal histogram over %d paths\n\n",
		ph.Buckets(), census.Size())

	planner := exec.Planner{Est: exec.EstimatorFunc(ph.Estimate)}
	oracle := exec.Planner{Est: exec.EstimatorFunc(func(p paths.Path) float64 {
		return float64(census.Selectivity(p))
	})}

	queries := []paths.Path{
		{0, 1, 2}, {5, 0, 0}, {1, 1, 1}, {3, 4, 0}, {0, 5, 5}, {2, 0, 1},
	}
	var chosenWork, bestWork int64
	agree := 0
	for _, q := range queries {
		chosen := planner.ChoosePlan(q)
		best := oracle.ChoosePlan(q)
		estimated := planner.Costs(q)

		// Execute every plan so estimated and actual volume line up per
		// plan — the spread is what estimator quality buys.
		fmt.Printf("query %s\n", q.Key())
		var result int64
		works := make([]int64, len(q))
		for s := range q {
			_, st := exec.ExecutePlan(g, q, exec.Plan{Start: s}, exec.Options{})
			works[s] = st.Work
			result = st.Result
			mark := "  "
			if s == chosen.Start {
				mark = "←chosen"
			}
			if s == best.Start {
				mark += " ←oracle"
			}
			fmt.Printf("  plan %-9s estimated=%-9.1f actual=%-7d %s\n",
				(exec.Plan{Start: s}).Describe(len(q)), estimated[s], st.Work, mark)
		}
		minWork := works[0]
		for _, w := range works[1:] {
			if w < minWork {
				minWork = w
			}
		}
		if works[chosen.Start] == minWork {
			agree++
		}
		chosenWork += works[chosen.Start]
		bestWork += minWork
		fmt.Printf("  result %d pairs\n\n", result)
	}
	fmt.Printf("chosen plans hit the optimum on %d/%d queries\n", agree, len(queries))
	fmt.Printf("total executed work: %d vs oracle %d (%.2fx)\n",
		chosenWork, bestWork, float64(chosenWork)/float64(bestWork))
}
