// Command pathserve runs the engine as a long-lived query service: it
// builds one pathsel.Estimator — over an edge-list file or a generated
// Table-3 dataset — and serves it over HTTP (internal/serve), sharing
// the estimator's statistics, relation pool, and persistent relation
// cache across every concurrent request. The estimator's resource
// policy is exposed as flags: -timeout bounds each request, -max-cost
// and -max-result-bytes gate admission, and -degrade turns kills into
// degraded 200s carrying the histogram estimate. -max-inflight enables
// the overload controller (adaptive concurrency limit, bounded
// admission queue with predictive shedding, 429 + Retry-After), tuned
// by -min-inflight, -latency-target, -queue, and -queue-timeout;
// -brownout additionally degrades expensive queries to estimates under
// sustained pressure.
//
// Usage:
//
//	pathserve -dataset snap-freebase-full -scale 0.05 -k 3    # generated dataset
//	pathserve -graph moreno.txt -k 3 -timeout 100ms -degrade  # edge-list file
//
// Endpoints: GET /query?q=a/b/c (exact selectivity with plan and cache
// stats), GET /stats (vocabulary, counters, cache occupancy), GET
// /healthz. The server shuts down gracefully on SIGINT/SIGTERM, letting
// in-flight queries finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/pathsel"
)

// options is the flag set, separated from main so tests can exercise
// the build path without a process.
type options struct {
	addr    string
	graph   string
	dataset string
	scale   float64
	seed    int64

	k       int
	buckets int

	workers    int
	bushy      bool
	cacheBytes int64
	shards     int

	timeout        time.Duration
	maxCost        float64
	maxResultBytes int64
	degrade        bool

	maxInFlight   int
	minInFlight   int
	latencyTarget time.Duration
	queueLimit    int
	queueTimeout  time.Duration
	brownout      bool

	faultStepDelay  time.Duration
	faultStepJitter time.Duration
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("pathserve", flag.ContinueOnError)
	o := &options{}
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.StringVar(&o.graph, "graph", "", "edge-list file (src dst label per line)")
	fs.StringVar(&o.dataset, "dataset", "", "generated dataset name (alternative to -graph)")
	fs.Float64Var(&o.scale, "scale", 0.05, "generated dataset scale in (0,1]")
	fs.Int64Var(&o.seed, "seed", 42, "generated dataset seed")
	fs.IntVar(&o.k, "k", 3, "maximum path length served")
	fs.IntVar(&o.buckets, "buckets", 64, "histogram bucket budget")
	fs.IntVar(&o.workers, "workers", 1, "per-query join parallelism (serving saturates cores with request parallelism; raise only for lone heavy queries)")
	fs.BoolVar(&o.bushy, "bushy", false, "enable bushy plan search")
	fs.Int64Var(&o.cacheBytes, "cache-bytes", pathsel.DefaultCacheBytes, "persistent relation cache capacity (0 disables)")
	fs.IntVar(&o.shards, "cache-shards", 0, "relation cache shard count (0 = default)")
	fs.DurationVar(&o.timeout, "timeout", 0, "per-query deadline (0 = none)")
	fs.Float64Var(&o.maxCost, "max-cost", 0, "admission bound on estimated plan cost (0 = none)")
	fs.Int64Var(&o.maxResultBytes, "max-result-bytes", 0, "budget on any materialized relation (0 = none)")
	fs.BoolVar(&o.degrade, "degrade", false, "answer resource kills with the histogram estimate instead of an error")
	fs.IntVar(&o.maxInFlight, "max-inflight", 0, "overload controller: concurrent execution slots (0 disables the controller)")
	fs.IntVar(&o.minInFlight, "min-inflight", 0, "overload controller: adaptive limit floor (0 = 1)")
	fs.DurationVar(&o.latencyTarget, "latency-target", 0, "overload controller: service-time target the in-flight limit adapts toward (0 pins the limit at -max-inflight)")
	fs.IntVar(&o.queueLimit, "queue", 0, "overload controller: admission queue bound (0 = 4x -max-inflight)")
	fs.DurationVar(&o.queueTimeout, "queue-timeout", 0, "overload controller: longest queued wait before predictive shedding (0 = 100ms)")
	fs.BoolVar(&o.brownout, "brownout", false, "overload controller: degrade expensive queries to estimates under sustained pressure")
	fs.DurationVar(&o.faultStepDelay, "fault-step-delay", 0, "testing: inject this blocking delay into every join step (models a slow backend for overload drills; 0 = off)")
	fs.DurationVar(&o.faultStepJitter, "fault-step-jitter", 0, "testing: deterministic jitter added to -fault-step-delay")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if (o.graph == "") == (o.dataset == "") {
		return nil, fmt.Errorf("exactly one of -graph or -dataset is required")
	}
	if o.maxInFlight <= 0 && (o.minInFlight > 0 || o.latencyTarget > 0 || o.queueLimit > 0 || o.queueTimeout > 0 || o.brownout) {
		return nil, fmt.Errorf("overload flags need the controller enabled: set -max-inflight > 0")
	}
	return o, nil
}

// buildServer loads the graph, builds the estimator, and wraps it in
// the serving layer.
func buildServer(o *options) (*serve.Server, *pathsel.Graph, error) {
	var g *pathsel.Graph
	if o.graph != "" {
		f, err := os.Open(o.graph)
		if err != nil {
			return nil, nil, err
		}
		g, err = pathsel.LoadEdgeList(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
	} else {
		var err error
		g, err = pathsel.GenerateDataset(o.dataset, o.scale, o.seed)
		if err != nil {
			return nil, nil, err
		}
	}
	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength:     o.k,
		Buckets:           o.buckets,
		Workers:           o.workers,
		BushyPlans:        o.bushy,
		CacheBytes:        o.cacheBytes,
		CacheShards:       o.shards,
		QueryTimeout:      o.timeout,
		MaxPlanCost:       o.maxCost,
		MaxResultBytes:    o.maxResultBytes,
		DegradeToEstimate: o.degrade,
	})
	if err != nil {
		return nil, nil, err
	}
	var opt serve.Options
	if o.maxInFlight > 0 {
		opt.Overload = &serve.OverloadConfig{
			MaxInFlight:   o.maxInFlight,
			MinInFlight:   o.minInFlight,
			LatencyTarget: o.latencyTarget,
			QueueLimit:    o.queueLimit,
			QueueTimeout:  o.queueTimeout,
			Brownout:      o.brownout,
		}
	}
	return serve.NewWithOptions(est, opt), g, nil
}

func run(o *options) error {
	start := time.Now()
	if o.faultStepDelay > 0 {
		faultinject.Install(faultinject.NewInjector(faultinject.Rule{
			Site: "exec.step", Action: faultinject.ActDelay,
			Delay: o.faultStepDelay, Jitter: o.faultStepJitter,
		}))
		defer faultinject.Uninstall()
		fmt.Printf("pathserve: fault injection armed: exec.step delay %v jitter %v\n", o.faultStepDelay, o.faultStepJitter)
	}
	srv, g, err := buildServer(o)
	if err != nil {
		return err
	}
	fmt.Printf("pathserve: %d vertices, %d edges, labels %v, built in %v\n",
		g.NumVertices(), g.NumEdges(), g.Labels(), time.Since(start).Round(time.Millisecond))

	hs := &http.Server{Addr: o.addr, Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("pathserve: listening on http://%s (GET /query?q=a/b/c, /stats, /healthz)\n", o.addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("pathserve: %v — draining\n", sig)
		srv.StartDrain() // new arrivals get 503 + Retry-After while in-flight work finishes
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
		c := srv.Counters()
		fmt.Printf("pathserve: served %d requests (%d ok, %d degraded, %d rejected, %d shed, %d brownout-degraded, %d timeout, %d failed)\n",
			c.Requests, c.OK, c.Degraded, c.Rejected, c.Shed, c.BrownoutDegraded, c.Timeout, c.Failed)
		return nil
	}
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "pathserve:", err)
		os.Exit(2)
	}
	if err := run(o); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "pathserve:", err)
		os.Exit(1)
	}
}
