package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func report(numCPU int, results ...experiments.PerfResult) *experiments.PerfReport {
	return &experiments.PerfReport{
		SchemaVersion: experiments.BenchSchemaVersion,
		NumCPU:        numCPU,
		Results:       results,
	}
}

func row(name string, workers int, speedup float64) experiments.PerfResult {
	return experiments.PerfResult{Name: name, Dataset: "SNAP-FF", Workers: workers,
		Iters: 1, NsPerOp: 1000, Speedup: speedup}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	base := report(1, row("exec/hybrid-forward", 1, 5.0))
	fresh := report(1, row("exec/hybrid-forward", 1, 4.0))
	passed, skipped, failures := Diff(base, fresh, 0.25, 0)
	if len(failures) != 0 || len(skipped) != 0 || len(passed) != 1 {
		t.Fatalf("passed=%v skipped=%v failures=%v", passed, skipped, failures)
	}
}

func TestDiffFailsBeyondThreshold(t *testing.T) {
	base := report(1, row("exec/hybrid-forward", 1, 5.0))
	fresh := report(1, row("exec/hybrid-forward", 1, 3.7)) // floor is 3.75
	_, _, failures := Diff(base, fresh, 0.25, 0)
	if len(failures) != 1 || !strings.Contains(failures[0], "below") {
		t.Fatalf("failures = %v, want one threshold failure", failures)
	}
}

// TestMergeBestGatesOnBestRun pins the best-of-N acceptance mode: a
// noise dip in one run must not fail the gate when another run of the
// same workload holds the ratio, while a regression present in every
// run still fails.
func TestMergeBestGatesOnBestRun(t *testing.T) {
	base := report(1, row("exec/hybrid-backward", 1, 4.0))
	dip := report(1, row("exec/hybrid-backward", 1, 2.5))   // one-run noise
	hold := report(1, row("exec/hybrid-backward", 1, 3.95)) // within 5%
	merged := MergeBest([]*experiments.PerfReport{dip, hold})
	if len(merged.Results) != 1 || merged.Results[0].Speedup != 3.95 {
		t.Fatalf("merged = %+v, want the best run's ratio", merged.Results)
	}
	if _, _, failures := Diff(base, merged, 0.05, 0); len(failures) != 0 {
		t.Fatalf("best-of-N gate failed on a one-run dip: %v", failures)
	}
	// A regression in every run survives the merge and fails.
	worse := MergeBest([]*experiments.PerfReport{
		report(1, row("exec/hybrid-backward", 1, 2.5)),
		report(1, row("exec/hybrid-backward", 1, 2.8)),
	})
	if _, _, failures := Diff(base, worse, 0.05, 0); len(failures) != 1 {
		t.Fatalf("persistent regression passed the best-of-N gate: %v", failures)
	}
}

func TestDiffFailsOnMissingCase(t *testing.T) {
	base := report(1, row("exec/hybrid-forward", 1, 5.0))
	fresh := report(1, row("exec/hybrid-backward", 1, 5.0))
	_, _, failures := Diff(base, fresh, 0.25, 0)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("failures = %v, want one missing-case failure", failures)
	}
}

func TestDiffSkipsScalingRowsAcrossHosts(t *testing.T) {
	// Worker-scaling ratios (workers > 1) are wall-clock-sensitive: on a
	// 1-core baseline host they hover near 1.0, on a multi-core CI host
	// they can be anything. They must be skipped — even when missing —
	// exactly when num_cpu differs.
	base := report(1,
		row("parexec/forward", 1, 0), // no ratio: never compared
		row("parexec/forward", 2, 1.02),
		row("parexec/forward", 4, 0.97),
		row("exec/hybrid-forward", 1, 5.0))
	fresh := report(8,
		row("parexec/forward", 2, 3.5),
		row("exec/hybrid-forward", 1, 5.1))
	passed, skipped, failures := Diff(base, fresh, 0.25, 0)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want the two workers>1 rows", skipped)
	}
	if len(passed) != 1 || !strings.Contains(passed[0], "exec/hybrid-forward") {
		t.Fatalf("passed = %v, want the representation ratio checked", passed)
	}
	// Same hosts: the scaling rows are compared again (and one is missing).
	fresh.NumCPU = 1
	_, skipped, failures = Diff(base, fresh, 0.25, 0)
	if len(skipped) != 0 {
		t.Fatalf("same-host skipped = %v, want none", skipped)
	}
	// workers=4 row is missing, workers=2 row improved: exactly one failure.
	if len(failures) != 1 || !strings.Contains(failures[0], "workers=4") {
		t.Fatalf("same-host failures = %v, want the missing workers=4 row", failures)
	}
}

func TestDiffKeysOnKAndDataset(t *testing.T) {
	a := experiments.PerfResult{Name: "census/hybrid", Dataset: "SNAP-ER", K: 3, Workers: 1, Speedup: 1.2, NsPerOp: 1, Iters: 1}
	b := experiments.PerfResult{Name: "census/hybrid", Dataset: "SNAP-FF", K: 3, Workers: 1, Speedup: 5.0, NsPerOp: 1, Iters: 1}
	base := report(1, a, b)
	fresh := report(1, b, a) // order must not matter; keys must not collide
	_, _, failures := Diff(base, fresh, 0.25, 0)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
}

func TestDiffZeroThresholdExactBar(t *testing.T) {
	base := report(1, row("join/adaptive", 0, 1.1))
	fresh := report(1, row("join/adaptive", 0, 1.1))
	_, _, failures := Diff(base, fresh, 0, 0)
	if len(failures) != 0 {
		t.Fatalf("equal ratios must pass at threshold 0: %v", failures)
	}
}

func TestDiffCacheRowsUnderRaisedFloor(t *testing.T) {
	// Cache rows time whole workload passes whose ratios jitter far
	// beyond the kernel rows', so they are gated only when both sides
	// measured at least cacheNoiseMult × the noise floor. A warm pass in
	// the 1–10ms band with a collapsed ratio must be skipped, not failed
	// — and so must a small-dataset populate pass.
	warmBase := row("cache/warm", 1, 4.0)
	warmBase.NsPerOp = 3_000_000 // above 1ms, below the 10ms raised floor
	warmFresh := warmBase
	warmFresh.Speedup = 1.2 // would hard-fail if gated
	populateBase := row("cache/populate", 1, 2.8)
	populateBase.NsPerOp = 2_000_000 // small dataset: few-ms pass
	populateFresh := populateBase
	populateFresh.Speedup = 1.2 // would hard-fail if gated
	slowBase := row("cache/populate", 1, 0.9)
	slowBase.NsPerOp = 30_000_000
	slowBase.K = 4 // distinct case key from the small populate row
	slowFresh := slowBase
	base := report(1, warmBase, populateBase, slowBase)
	fresh := report(1, warmFresh, populateFresh, slowFresh)
	passed, skipped, failures := Diff(base, fresh, 0.25, 1_000_000)
	if len(failures) != 0 {
		t.Fatalf("cache-section jitter hard-failed: %v", failures)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want the two sub-floor cache rows", skipped)
	}
	for _, s := range skipped {
		if !strings.Contains(s, "ratio-jitter") {
			t.Fatalf("skip reason %q does not name the jitter floor", s)
		}
	}
	// The slow populate row clears the raised floor and stays gated.
	if len(passed) != 1 || !strings.Contains(passed[0], "cache/populate") {
		t.Fatalf("passed = %v, want the slow populate row gated as usual", passed)
	}

	// Cache rows slow enough to clear the raised floor on both sides are
	// gated like any other case.
	warmBase.NsPerOp = 20_000_000
	warmFresh.NsPerOp = 20_000_000
	base = report(1, warmBase)
	fresh = report(1, warmFresh)
	_, _, failures = Diff(base, fresh, 0.25, 1_000_000)
	if len(failures) != 1 {
		t.Fatalf("slow warm-cache regression not gated: %v", failures)
	}
}

func TestDiffNoiseFloorSkipsMicroKernels(t *testing.T) {
	// Micro-kernel rows time µs-scale ops whose ratios swing between runs;
	// below the noise floor they are reported as skipped, not gated —
	// even when the fresh side alone dips under the floor.
	slow := row("exec/hybrid-forward", 1, 5.0)
	slow.NsPerOp = 2_000_000
	fast := row("join/adaptive", 0, 1.1)
	base := report(1, slow, fast)
	crashed := fast
	crashed.Speedup = 0.1 // would fail hard if it were gated
	freshSlow := slow
	fresh := report(1, freshSlow, crashed)
	passed, skipped, failures := Diff(base, fresh, 0.25, 1_000_000)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "noise floor") {
		t.Fatalf("skipped = %v, want the micro-kernel row", skipped)
	}
	if len(passed) != 1 {
		t.Fatalf("passed = %v, want the engine-level row", passed)
	}
}
