// Command benchdiff is the CI perf-regression gate: it compares a freshly
// measured BENCH JSON report (schema in docs/benchmarks.md) against the
// committed baseline artifact and fails when any case's speedup ratio has
// regressed by more than the threshold.
//
// Usage:
//
//	benchdiff -old BENCH_exec.json -new bench-exec-report.json [-threshold 0.25]
//	benchdiff -old BENCH_exec.json -new run1.json,run2.json,run3.json -threshold 0.05
//
// -new accepts a comma-separated list of reports from repeated
// measurements of the same workload: each case is gated on its best
// (highest) fresh speedup across the runs. A real regression shows up in
// every run, while a one-run noise dip does not — best-of-N is what
// makes a tight threshold (the 5% gate on the exec and cache artifacts,
// which hold the hot path's cancellation checks to their budget)
// enforceable on hosts whose single-run ratios jitter more than the
// threshold itself.
//
// It compares speedup_vs_baseline ratios, not raw wall-clock numbers:
// each ratio divides two timings measured on the same host in the same
// run, so representation speedups (hybrid vs dense, kernel vs kernel)
// carry across hosts. Worker-scaling ratios do not — they divide timings
// at different worker counts, which depends on the measuring host's
// cores — so when the two reports' schema-v2 num_cpu headers differ,
// every case measured at workers > 1 is skipped as wall-clock-sensitive.
// Cases whose measured operation is shorter than -min-ns on either side
// (default 1ms) are skipped as below the noise floor: the micro-kernel
// rows (compose/*, join/*) time microsecond-scale operations whose
// ratios legitimately swing ±30% between runs at low iteration counts,
// so they are informational, while every engine-level row is gated.
// The workload-pass sections (BENCH_cache.json's cache/* rows and
// BENCH_serve.json's serve/* rows) get a stricter rule: such a case is
// skipped unless both sides measured at least cacheNoiseMult × -min-ns,
// because these rows time whole workload passes — warm passes are
// copy-bound, the serve rows ride the HTTP stack, and on small datasets
// even cold passes are few-ms — whose cold/warm and cold/populate
// ratios legitimately jitter far more than any kernel ratio at low
// iteration counts; hard-failing on that jitter would make the gate cry
// wolf.
// A baseline case that has no matching case in the new report (same
// name, dataset, k, and workers) fails the gate: silently dropping a
// measured case is itself a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

// cacheNoiseMult raises the noise floor for the workload-pass sections:
// a cache/* or serve/* ratio is only gated when both sides measured at
// least this many multiples of -min-ns. These rows time whole workload
// passes whose ratios divide two few-millisecond numbers — warm passes
// serve whole queries by copy (the serve rows additionally ride the
// HTTP stack), and on small datasets even the cold passes sit in the
// single-digit-ms band — so their cold/warm ratios legitimately jitter
// far beyond the engine rows the default floor was tuned for.
const cacheNoiseMult = 10

// isWorkloadRow recognizes the whole-workload-pass rows: the cache
// section (BENCH_cache.json), the serving section (BENCH_serve.json),
// the cross-layer scaling ladders (BENCH_scaling.json), whose batch
// and serve rungs time the same kind of whole passes, the RPQ
// section (BENCH_rpq.json), whose cold/warm rows time compiled-workload
// passes of the same shape, and the overload section
// (BENCH_overload.json), whose controlled/uncontrolled goodput ratios
// divide two whole overdriven passes.
func isWorkloadRow(name string) bool {
	return strings.HasPrefix(name, "cache/") || strings.HasPrefix(name, "serve/") ||
		strings.HasPrefix(name, "scaling/") || strings.HasPrefix(name, "rpq/") ||
		strings.HasPrefix(name, "overload/")
}

// caseKey identifies one comparable measurement across reports.
type caseKey struct {
	Name    string
	Dataset string
	K       int
	Workers int
}

func (k caseKey) String() string {
	s := k.Name + " on " + k.Dataset
	if k.K > 0 {
		s += fmt.Sprintf(" k=%d", k.K)
	}
	if k.Workers > 0 {
		s += fmt.Sprintf(" workers=%d", k.Workers)
	}
	return s
}

// Diff compares every baseline case carrying a speedup ratio against the
// new report and returns the verdict lists: checked cases that passed,
// cases skipped as uncomparable (wall-clock-sensitive — workers > 1
// while the reports' num_cpu headers differ — timed below the minNs
// noise floor on either side, or a cache-section row under its raised
// cacheNoiseMult floor), and failures (regressed beyond the
// threshold, or missing from the new report). threshold is the tolerated
// fractional loss: 0.25 fails when a new ratio drops below 75% of the
// baseline.
func Diff(base, fresh *experiments.PerfReport, threshold float64, minNs int64) (passed, skipped, failures []string) {
	freshByKey := map[caseKey]experiments.PerfResult{}
	for _, r := range fresh.Results {
		freshByKey[caseKey{r.Name, r.Dataset, r.K, r.Workers}] = r
	}
	hostsDiffer := base.NumCPU != fresh.NumCPU
	for _, b := range base.Results {
		if b.Speedup <= 0 {
			continue // no ratio to compare (a baseline-only timing row)
		}
		key := caseKey{b.Name, b.Dataset, b.K, b.Workers}
		if hostsDiffer && b.Workers > 1 {
			skipped = append(skipped, fmt.Sprintf("%s: worker-scaling ratio on a different host (num_cpu %d vs %d)",
				key, base.NumCPU, fresh.NumCPU))
			continue
		}
		if b.NsPerOp < minNs {
			skipped = append(skipped, fmt.Sprintf("%s: baseline op %dns below the %dns noise floor", key, b.NsPerOp, minNs))
			continue
		}
		n, ok := freshByKey[key]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: case missing from new report", key))
			continue
		}
		if n.NsPerOp < minNs {
			skipped = append(skipped, fmt.Sprintf("%s: new op %dns below the %dns noise floor", key, n.NsPerOp, minNs))
			continue
		}
		if floor := cacheNoiseMult * minNs; isWorkloadRow(b.Name) && (b.NsPerOp < floor || n.NsPerOp < floor) {
			skipped = append(skipped, fmt.Sprintf("%s: workload pass under the %dns ratio-jitter floor (%dns vs %dns)",
				key, floor, b.NsPerOp, n.NsPerOp))
			continue
		}
		if n.Speedup <= 0 {
			failures = append(failures, fmt.Sprintf("%s: new report lost the speedup ratio", key))
			continue
		}
		floor := b.Speedup * (1 - threshold)
		if n.Speedup < floor {
			failures = append(failures, fmt.Sprintf("%s: speedup %.3f below %.3f (baseline %.3f − %d%%)",
				key, n.Speedup, floor, b.Speedup, int(threshold*100)))
			continue
		}
		passed = append(passed, fmt.Sprintf("%s: speedup %.3f vs baseline %.3f", key, n.Speedup, b.Speedup))
	}
	return passed, skipped, failures
}

// MergeBest folds repeated measurements of the same workload into one
// report, keeping each case's best (highest-speedup) run. Cases without
// a speedup ratio keep their first occurrence — they are baseline-only
// timing rows the diff never gates. The header is the first report's;
// repeated runs come from one host in one CI job.
func MergeBest(reports []*experiments.PerfReport) *experiments.PerfReport {
	if len(reports) == 1 {
		return reports[0]
	}
	merged := *reports[0]
	merged.Results = nil
	best := map[caseKey]int{} // key → index into merged.Results
	for _, rep := range reports {
		for _, r := range rep.Results {
			key := caseKey{r.Name, r.Dataset, r.K, r.Workers}
			i, ok := best[key]
			if !ok {
				best[key] = len(merged.Results)
				merged.Results = append(merged.Results, r)
				continue
			}
			if r.Speedup > merged.Results[i].Speedup {
				merged.Results[i] = r
			}
		}
	}
	return &merged
}

// load reads one BENCH JSON report and enforces the schema floor: the
// comparison needs the v2 num_cpu header to decide what is comparable.
func load(path string) (*experiments.PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep experiments.PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.SchemaVersion < 2 {
		return nil, fmt.Errorf("%s: schema version %d lacks the num_cpu header (need ≥ 2)", path, rep.SchemaVersion)
	}
	return &rep, nil
}

func main() {
	oldPath := flag.String("old", "", "committed baseline BENCH_*.json artifact")
	newPath := flag.String("new", "", "freshly measured report(s) to gate; comma-separated repeats gate on each case's best run")
	threshold := flag.Float64("threshold", 0.25, "tolerated fractional speedup loss before failing")
	minNs := flag.Int64("min-ns", 1_000_000, "noise floor: skip cases whose measured op is shorter than this on either side")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are both required")
		os.Exit(2)
	}
	if *threshold < 0 || *threshold >= 1 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold must be in [0, 1)")
		os.Exit(2)
	}
	base, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	var runs []*experiments.PerfReport
	for _, path := range strings.Split(*newPath, ",") {
		rep, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		runs = append(runs, rep)
	}
	fresh := MergeBest(runs)
	passed, skipped, failures := Diff(base, fresh, *threshold, *minNs)
	fmt.Printf("benchdiff %s vs %s: %d passed, %d skipped, %d failed\n",
		*newPath, *oldPath, len(passed), len(skipped), len(failures))
	for _, s := range passed {
		fmt.Println("  pass:", s)
	}
	for _, s := range skipped {
		fmt.Println("  skip:", s)
	}
	for _, s := range failures {
		fmt.Println("  FAIL:", s)
	}
	if len(failures) > 0 {
		os.Exit(1)
	}
}
