// Command serveload drives a running pathserve instance with an
// open-loop Zipf workload and reports what the serving layer is judged
// by: latency percentiles (service and sojourn), achieved throughput,
// cache hit rate, and how many requests were shed, degraded, or timed
// out. It fetches the server's /stats endpoint for the label vocabulary
// and maximum path length, builds a ranked query pool, and replays a
// Zipf-distributed arrival trace (internal/workload) against /query.
//
// Usage:
//
//	serveload -url http://127.0.0.1:8080 -n 2000 -concurrency 8            # saturation (capacity)
//	serveload -url http://127.0.0.1:8080 -n 2000 -rate 500 -zipf-s 1.2     # open loop at 500 qps
//	serveload ... -rate 500 -arrival onoff -burst-on 50ms -burst-off 150ms # bursty ON/OFF arrivals
//	serveload ... -rate 500 -arrival gamma -gamma-shape 0.3                # clumped Gamma arrivals
//	serveload ... -retries 2 -retry-base 5ms                               # retry sheds, honoring Retry-After
//	serveload ... -rpq                                                     # RPQ-pattern pool against /query?pattern=
//	serveload ... -batch 16                                                # group arrivals into POST /batch requests
//	serveload ... -json report.json                                        # machine-readable report
//
// Rate 0 replays the whole trace as fast as the concurrency allows
// (capacity mode — read the service latencies); a positive rate holds
// the arrival process fixed regardless of server speed (open loop —
// read the sojourn latencies, which charge queue wait). -arrival picks
// the arrival process at that rate: exp (Poisson, the default), onoff
// (bursts at the elevated in-window rate separated by silent windows),
// or gamma (clumped inter-arrival gaps; shape < 1 burstier than
// Poisson). -retries re-issues overload-shed answers (429 +
// Retry-After) with capped jittered exponential backoff that honors
// the server's hint; retry wait is charged to the original arrival's
// sojourn. -rpq swaps the concrete-path pool for regular path patterns
// (alternation, optionals, bounded repetition); -batch N issues the
// trace as POST /batch requests of N consecutive arrivals, exercising
// the server's parse-once batch executor.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "pathserve base URL")
	n := flag.Int("n", 1000, "trace length (number of requests)")
	rate := flag.Float64("rate", 0, "arrival rate in qps (0 = saturation: replay as fast as concurrency allows)")
	concurrency := flag.Int("concurrency", 4, "replayer workers (max in-flight requests)")
	poolSize := flag.Int("pool", 64, "distinct queries in the Zipf pool")
	maxLen := flag.Int("maxlen", 0, "longest query in the pool (0 = the server's max path length)")
	zipfS := flag.Float64("zipf-s", workload.DefaultZipfS, "Zipf skew exponent (> 1)")
	zipfV := flag.Float64("zipf-v", workload.DefaultZipfV, "Zipf offset (>= 1)")
	seed := flag.Int64("seed", 1, "trace seed")
	arrival := flag.String("arrival", "", "arrival process at -rate: exp (default), onoff, or gamma")
	burstOn := flag.Duration("burst-on", 0, "onoff arrivals: ON window length (0 = default)")
	burstOff := flag.Duration("burst-off", 0, "onoff arrivals: OFF window length (0 = default)")
	gammaShape := flag.Float64("gamma-shape", 0, "gamma arrivals: shape parameter, < 1 clumps (0 = default)")
	retries := flag.Int("retries", 0, "re-issue overload-shed answers up to this many times per arrival")
	retryBase := flag.Duration("retry-base", 0, "retry backoff base, doubled per attempt with jitter (0 = default)")
	rpq := flag.Bool("rpq", false, "draw the pool from RPQ patterns (alternation, ?, {m,n}) instead of concrete paths")
	batch := flag.Int("batch", 0, "group this many consecutive arrivals into one POST /batch request (0 = per-query GETs)")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file (- for stdout)")
	flag.Parse()

	retry := serve.RetryPolicy{Max: *retries, Base: *retryBase, Seed: *seed}
	if err := run(*url, *n, *rate, *concurrency, *poolSize, *maxLen, *zipfS, *zipfV, *seed,
		*arrival, *burstOn, *burstOff, *gammaShape, retry, *rpq, *batch, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

// fetchStats asks the server what queries it can answer.
func fetchStats(baseURL string) (*serve.StatsResponse, error) {
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/stats answered %s", resp.Status)
	}
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("decoding /stats: %w", err)
	}
	if len(st.Labels) == 0 || st.MaxPathLength < 1 {
		return nil, fmt.Errorf("/stats reports an unusable vocabulary: %d labels, k=%d", len(st.Labels), st.MaxPathLength)
	}
	return &st, nil
}

func run(baseURL string, n int, rate float64, concurrency, poolSize, maxLen int, zipfS, zipfV float64, seed int64,
	arrival string, burstOn, burstOff time.Duration, gammaShape float64, retry serve.RetryPolicy, rpq bool, batch int, jsonOut string) error {
	st, err := fetchStats(baseURL)
	if err != nil {
		return err
	}
	if maxLen <= 0 || maxLen > st.MaxPathLength {
		maxLen = st.MaxPathLength
	}
	opts := workload.TraceOptions{
		S: zipfS, V: zipfV, Rate: rate, N: n, Seed: seed,
		Arrival: arrival, OnDur: burstOn, OffDur: burstOff, GammaShape: gammaShape,
	}
	var trace []serve.TimedQuery
	var poolLen int
	if rpq {
		pool, err := workload.RPQPool(st.Labels, maxLen, poolSize, seed)
		if err != nil {
			return err
		}
		tr, err := workload.ZipfRankTrace(len(pool), opts)
		if err != nil {
			return err
		}
		if trace, err = serve.RankQueries(tr, pool); err != nil {
			return err
		}
		poolLen = len(pool)
	} else {
		pool, err := workload.QueryPool(len(st.Labels), maxLen, poolSize, seed)
		if err != nil {
			return err
		}
		opts.Pool = pool
		tr, err := workload.ZipfTrace(opts)
		if err != nil {
			return err
		}
		if trace, err = serve.TraceQueries(tr, st.Labels); err != nil {
			return err
		}
		poolLen = len(pool)
	}

	mode := "saturation"
	if rate > 0 {
		mode = fmt.Sprintf("open loop @ %g qps", rate)
		if arrival != "" && arrival != workload.ArrivalExp {
			mode += " (" + arrival + ")"
		}
	}
	kind := "path"
	if rpq {
		kind = "RPQ"
	}
	transport := "per-query"
	if batch > 1 {
		transport = fmt.Sprintf("batches of %d", batch)
	}
	fmt.Printf("serveload: %d requests over %d distinct %s queries (zipf s=%g), %s, concurrency %d, %s\n",
		len(trace), poolLen, kind, zipfS, mode, concurrency, transport)

	rep, err := serve.RunLoad(baseURL, trace, serve.LoadOptions{Concurrency: concurrency, Batch: batch, Retry: retry})
	if err != nil {
		return err
	}
	printReport(rep, rate)

	if jsonOut == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func printReport(rep *serve.LoadReport, rate float64) {
	fmt.Printf("  outcomes: %d ok, %d degraded, %d rejected, %d shed, %d overload, %d timeout, %d failed, %d bad, %d transport errors\n",
		rep.OK, rep.Degraded, rep.Rejected, rep.Shed, rep.Overload, rep.Timeout, rep.Failed, rep.BadRequest, rep.TransportErrors)
	fmt.Printf("  overload: %d shed (final), %d retries, %d brownout-degraded\n",
		rep.Shed, rep.Retries, rep.DegradedBrownout)
	if rep.Batches > 0 {
		fmt.Printf("  batches: %d issued\n", rep.Batches)
	}
	fmt.Printf("  throughput: %.0f qps over %v\n", rep.QPS, time.Duration(rep.ElapsedNs).Round(time.Millisecond))
	fmt.Printf("  cache: %d hits / %d misses (hit rate %.1f%%)\n",
		rep.CacheHits, rep.CacheMisses, 100*rep.HitRate())
	lat := func(name string, s serve.LatencySummary) {
		fmt.Printf("  %s latency: p50 %v  p95 %v  p99 %v  max %v\n", name,
			time.Duration(s.P50Ns).Round(time.Microsecond),
			time.Duration(s.P95Ns).Round(time.Microsecond),
			time.Duration(s.P99Ns).Round(time.Microsecond),
			time.Duration(s.MaxNs).Round(time.Microsecond))
	}
	lat("service", rep.Service)
	if rate > 0 {
		lat("sojourn", rep.Sojourn)
		lat("sojourn-accepted", rep.SojournAccepted)
	}
}
