// Command pathhist builds a label-path histogram over a graph file and
// answers selectivity queries, printing estimate vs exact for each query
// path given as an argument. A built synopsis can be persisted with -save
// and later queried without the graph via -load.
//
// Usage:
//
//	pathhist -graph moreno.txt -k 3 -ordering sum-based -buckets 64 knows/likes likes
//	pathhist -graph moreno.txt -k 3 -evaluate            # whole-domain accuracy
//	pathhist -graph moreno.txt -k 3 -save stats.psh      # persist the synopsis
//	pathhist -load stats.psh knows/likes                 # estimate without the graph
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pathsel"
)

func main() {
	graphFile := flag.String("graph", "", "edge-list file (src dst label per line)")
	k := flag.Int("k", 3, "maximum path length")
	method := flag.String("ordering", pathsel.OrderingSumBased, "domain ordering: num-alph, num-card, lex-alph, lex-card, sum-based")
	builder := flag.String("histogram", pathsel.HistogramVOptimal, "histogram builder: v-optimal, equi-width, equi-depth, max-diff")
	buckets := flag.Int("buckets", 64, "bucket budget β")
	evaluate := flag.Bool("evaluate", false, "report whole-domain accuracy instead of answering queries")
	save := flag.String("save", "", "write the built synopsis to this file")
	load := flag.String("load", "", "answer queries from a saved synopsis (no -graph needed)")
	flag.Parse()

	var err error
	if *load != "" {
		err = runLoaded(*load, flag.Args())
	} else {
		err = run(*graphFile, *k, *method, *builder, *buckets, *evaluate, *save, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathhist:", err)
		os.Exit(1)
	}
}

func runLoaded(path string, queries []string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ce, err := pathsel.LoadEstimator(f)
	if err != nil {
		return err
	}
	fmt.Printf("synopsis: %s ordering, %d buckets, k=%d, labels %v\n",
		ce.Ordering(), ce.Buckets(), ce.MaxPathLength(), ce.Labels())
	if len(queries) == 0 {
		return fmt.Errorf("no query paths given")
	}
	for _, q := range queries {
		e, err := ce.Estimate(q)
		if err != nil {
			return err
		}
		fmt.Printf("%-30s estimate=%10.2f\n", q, e)
	}
	return nil
}

func run(graphFile string, k int, method, builder string, buckets int, evaluate bool, save string, queries []string) error {
	if graphFile == "" {
		return fmt.Errorf("-graph is required (or -load)")
	}
	f, err := os.Open(graphFile)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := pathsel.LoadEdgeList(f)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, labels %v\n", g.NumVertices(), g.NumEdges(), g.Labels())

	est, err := pathsel.Build(g, pathsel.Config{
		MaxPathLength: k,
		Ordering:      method,
		Histogram:     builder,
		Buckets:       buckets,
	})
	if err != nil {
		return err
	}
	fmt.Printf("histogram: %s over %s domain, %d buckets for %d paths\n",
		builder, est.Ordering(), est.Buckets(), est.DomainSize())

	if save != "" {
		out, err := os.Create(save)
		if err != nil {
			return err
		}
		if err := est.Save(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		info, err := os.Stat(save)
		if err != nil {
			return err
		}
		fmt.Printf("saved synopsis to %s (%d bytes)\n", save, info.Size())
	}
	if evaluate {
		acc := est.Evaluate()
		fmt.Printf("mean error rate: %.4f\nmean q-error:   %.3f\nmax |err|:      %.4f\npaths evaluated: %d\n",
			acc.MeanErrorRate, acc.MeanQError, acc.MaxAbsError, acc.Paths)
		return nil
	}
	if len(queries) == 0 {
		if save != "" {
			return nil
		}
		return fmt.Errorf("no query paths given (or use -evaluate)")
	}
	for _, q := range queries {
		e, err := est.Estimate(q)
		if err != nil {
			return err
		}
		truth, err := est.TrueSelectivity(q)
		if err != nil {
			return err
		}
		fmt.Printf("%-30s estimate=%10.2f exact=%8d\n", q, e, truth)
	}
	return nil
}
