package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

// writeTestGraph materializes a small edge-list file.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	g := dataset.ErdosRenyi(40, 150, dataset.UniformLabels{L: 3}, 5)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueries(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(path, 2, "sum-based", "v-optimal", 8, false, "", []string{"1/2", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEvaluate(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(path, 2, "lex-card", "equi-width", 8, true, "", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	cases := map[string]func() error{
		"no graph":       func() error { return run("", 2, "sum-based", "v-optimal", 8, false, "", nil) },
		"missing file":   func() error { return run("/nonexistent", 2, "sum-based", "v-optimal", 8, false, "", nil) },
		"no queries":     func() error { return run(path, 2, "sum-based", "v-optimal", 8, false, "", nil) },
		"bad ordering":   func() error { return run(path, 2, "bogus", "v-optimal", 8, false, "", []string{"1"}) },
		"bad histogram":  func() error { return run(path, 2, "sum-based", "bogus", 8, false, "", []string{"1"}) },
		"unknown label":  func() error { return run(path, 2, "sum-based", "v-optimal", 8, false, "", []string{"zzz"}) },
		"loaded missing": func() error { return runLoaded("/nonexistent", []string{"1"}) },
	}
	for name, fn := range cases {
		if err := fn(); err == nil {
			t.Errorf("%s should error", name)
		}
	}
}

func TestSaveAndLoadRoundTrip(t *testing.T) {
	path := writeTestGraph(t)
	synopsis := filepath.Join(t.TempDir(), "stats.psh")
	// Saving without queries is a valid invocation.
	if err := run(path, 2, "sum-based", "v-optimal", 8, false, synopsis, nil); err != nil {
		t.Fatal(err)
	}
	if err := runLoaded(synopsis, []string{"1/2", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := runLoaded(synopsis, nil); err == nil {
		t.Fatal("loaded run without queries should error")
	}
	if err := runLoaded(synopsis, []string{"zzz"}); err == nil {
		t.Fatal("unknown label should error")
	}
}
