// Command experiments reproduces the paper's evaluation tables and
// figures. By default it runs every experiment at a reduced dataset scale
// (same code paths, smaller graphs — see DESIGN.md §4); -full switches to
// the published parameters (slow: the Figure 2 sweep recomputes exact
// selectivity censuses at k = 6 on ~200k-edge graphs).
//
// Usage:
//
//	experiments [-exp all|tables12|figure1|table3|table4|figure2|ablation|bounds]
//	            [-scale 0.04] [-seed 1] [-full] [-csv DIR] [-workers N]
//
// With -csv, each experiment additionally writes a machine-readable CSV
// file (table4.csv, figure2.csv, …) into DIR for plotting.
//
// The -bench-json, -bench-exec-json, -bench-par-exec-json,
// -bench-bushy-json, -bench-cache-json, -bench-serve-json,
// -bench-scaling-json, and -bench-rpq-json flags instead emit the
// committed BENCH_*.json perf
// artifacts (schema in docs/benchmarks.md) and exit; -workers N
// overrides the worker count of every bench emitter (default GOMAXPROCS,
// resolved when the bench runs; the serve bench ignores it — its rows
// are keyed by request concurrency instead). -cpuprofile FILE wraps
// whatever runs — bench emitters or experiments — in a CPU profile for
// regression triage (the CI scaling leg uploads these as artifacts).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, tables12, figure1, table3, table4, figure2, ablation, bounds, workload")
	scale := flag.Float64("scale", 0, "dataset scale in (0,1]; 0 = configuration default")
	seed := flag.Int64("seed", 1, "generator seed")
	full := flag.Bool("full", false, "use the paper's published parameters (slow)")
	csvDir := flag.String("csv", "", "directory to write CSV result files into (created if missing)")
	ds := flag.String("dataset", "", "restrict figure2/table3 to one Table 3 dataset name")
	maxK := flag.Int("maxk", 0, "cap the accuracy sweep's path length bound (0 = configuration default)")
	benchJSON := flag.String("bench-json", "", "run the full census/compose/exec perf bench and write a BENCH JSON report to this file, then exit")
	benchExecJSON := flag.String("bench-exec-json", "", "run only the query-execution perf bench and write a BENCH JSON report to this file, then exit")
	benchParExecJSON := flag.String("bench-par-exec-json", "", "run only the parallel-executor scaling bench and write a BENCH JSON report to this file, then exit")
	benchBushyJSON := flag.String("bench-bushy-json", "", "run only the bushy-plan/join-kernel perf bench and write a BENCH JSON report to this file, then exit")
	benchCacheJSON := flag.String("bench-cache-json", "", "run only the segment-relation cache workload bench (cold vs warm) and write a BENCH JSON report to this file, then exit")
	benchServeJSON := flag.String("bench-serve-json", "", "run only the serving-layer load bench (cold vs warm Zipf passes over HTTP) and write a BENCH JSON report to this file, then exit")
	benchScalingJSON := flag.String("bench-scaling-json", "", "run the cross-layer worker-scaling bench (exec, batch cache, serving ladders at workers 1/2/4) and write a BENCH JSON report to this file, then exit")
	benchRPQJSON := flag.String("bench-rpq-json", "", "run only the regular-path-query bench (cold vs warm compiled workload, estimate quality vs the enumerated oracle) and write a BENCH JSON report to this file, then exit")
	benchOverloadJSON := flag.String("bench-overload-json", "", "run only the overload-resilience bench (controlled vs uncontrolled bursty overdrive legs) and write a BENCH JSON report to this file, then exit")
	benchIters := flag.Int("bench-iters", 3, "iterations per perf-bench measurement")
	// Default 0, not a captured GOMAXPROCS: the count resolves through
	// sched.WorkerCount when the bench runs, so a GOMAXPROCS change after
	// process start (container managers do this) is honored.
	workers := flag.Int("workers", 0, "worker-goroutine override for all bench emitters (pathsel.Config.Workers semantics: ≤ 0 means GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	// die flushes the profile before os.Exit, which skips the defer above.
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		pprof.StopCPUProfile()
		os.Exit(1)
	}

	for _, b := range []struct {
		path string
		run  func() (*experiments.PerfReport, error)
	}{
		{*benchJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunPerfBench(*scale, *benchIters, *workers), nil
		}},
		{*benchExecJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunExecBench(*scale, *benchIters, *workers), nil
		}},
		{*benchParExecJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunParExecBench(*scale, *benchIters, *workers), nil
		}},
		{*benchBushyJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunBushyBench(*scale, *benchIters, *workers), nil
		}},
		{*benchCacheJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunCacheBench(*scale, *benchIters, *workers)
		}},
		{*benchServeJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunServeBench(*scale, *benchIters)
		}},
		{*benchScalingJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunScalingBench(*scale, *benchIters, *workers)
		}},
		{*benchRPQJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunRPQBench(*scale, *benchIters, *workers)
		}},
		{*benchOverloadJSON, func() (*experiments.PerfReport, error) {
			return experiments.RunOverloadBench(*scale, *benchIters)
		}},
	} {
		if b.path == "" {
			continue
		}
		// Open the output before the (slow) measurement so a bad path
		// fails fast.
		f, err := os.Create(b.path)
		if err == nil {
			var rep *experiments.PerfReport
			if rep, err = b.run(); err == nil {
				err = rep.WriteJSON(f)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			die(err)
		}
		fmt.Printf("wrote perf bench report to %s\n", b.path)
	}
	if *benchJSON != "" || *benchExecJSON != "" || *benchParExecJSON != "" ||
		*benchBushyJSON != "" || *benchCacheJSON != "" || *benchServeJSON != "" ||
		*benchScalingJSON != "" || *benchRPQJSON != "" || *benchOverloadJSON != "" {
		return
	}

	opt := experiments.DefaultOptions()
	if *full {
		opt = experiments.PaperOptions()
	}
	if *scale > 0 {
		opt.Scale = *scale
	}
	opt.Seed = *seed
	if *ds != "" {
		opt.Datasets = []string{*ds}
	}
	if *maxK > 0 {
		var ks []int
		for _, k := range opt.AccuracyKs {
			if k <= *maxK {
				ks = append(ks, k)
			}
		}
		opt.AccuracyKs = ks
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			die(err)
		}
	}
	if err := run(*exp, opt, *csvDir); err != nil {
		die(err)
	}
}

// writeCSV writes one CSV artifact via the supplied encoder.
func writeCSV(dir, name string, encode func(*os.File) error) error {
	if dir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(exp string, opt experiments.Options, csvDir string) error {
	out := os.Stdout
	runOne := func(name string) error {
		switch name {
		case "tables12":
			experiments.RunTables12().Render(out)
		case "figure1":
			res, err := experiments.RunFigure1(opt)
			if err != nil {
				return err
			}
			res.Render(out, 60)
			return writeCSV(csvDir, "figure1.csv", func(f *os.File) error { return res.WriteCSV(f) })
		case "table3":
			rows, err := experiments.RunTable3(opt)
			if err != nil {
				return err
			}
			experiments.RenderTable3(out, rows)
		case "table4":
			res, err := experiments.RunTable4(opt)
			if err != nil {
				return err
			}
			res.Render(out)
			return writeCSV(csvDir, "table4.csv", func(f *os.File) error { return res.WriteCSV(f) })
		case "figure2":
			res, err := experiments.RunFigure2(opt)
			if err != nil {
				return err
			}
			res.Render(out)
			return writeCSV(csvDir, "figure2.csv", func(f *os.File) error { return res.WriteCSV(f) })
		case "ablation":
			cells, err := experiments.BuilderAblation(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "Ablation: mean error rate by ordering × histogram builder (Moreno, k=3)")
			header := []string{"method", "builder", "beta", "mean err"}
			var rows [][]string
			for _, c := range cells {
				rows = append(rows, []string{c.Method, c.Builder,
					fmt.Sprintf("%d", c.Beta), fmt.Sprintf("%.4f", c.MeanErrorRate)})
			}
			experiments.RenderTable(out, header, rows)
			return writeCSV(csvDir, "ablation.csv", func(f *os.File) error {
				return experiments.WriteAblationCSV(f, cells)
			})
		case "workload":
			cells, err := experiments.WorkloadAccuracy(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "Workload accuracy: mean error rate by query workload × ordering (Moreno, k=3)")
			header := []string{"workload", "method", "beta", "mean err", "mean q-err"}
			var rows [][]string
			for _, c := range cells {
				rows = append(rows, []string{c.Workload, c.Method, fmt.Sprintf("%d", c.Beta),
					fmt.Sprintf("%.4f", c.MeanErrorRate), fmt.Sprintf("%.2f", c.MeanQError)})
			}
			experiments.RenderTable(out, header, rows)
			return writeCSV(csvDir, "workload.csv", func(f *os.File) error {
				return experiments.WriteWorkloadCSV(f, cells)
			})
		case "profile":
			rows, err := experiments.ErrorProfiles(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "Error profile: mean error rate by path length and selectivity decile (Moreno, k=3)")
			header := []string{"method", "axis", "bucket", "paths", "mean err"}
			var cells [][]string
			for _, r := range rows {
				cells = append(cells, []string{r.Method, r.Axis, fmt.Sprintf("%d", r.Bucket),
					fmt.Sprintf("%d", r.Paths), fmt.Sprintf("%.4f", r.MeanErrorRate)})
			}
			experiments.RenderTable(out, header, cells)
		case "plans":
			cells, err := experiments.PlanQuality(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "Plan quality: join planning from histogram estimates — k zig-zag plans and the bushy tree space per length-4 query, statistics bounded at k=3 (Moreno)")
			header := []string{"method", "beta", "zigzag agree", "zigzag work", "tree agree", "tree work"}
			var rows [][]string
			for _, c := range cells {
				rows = append(rows, []string{c.Method, fmt.Sprintf("%d", c.Beta),
					fmt.Sprintf("%.3f", c.Agreement), fmt.Sprintf("%.3f", c.WorkRatio),
					fmt.Sprintf("%.3f", c.TreeAgreement), fmt.Sprintf("%.3f", c.TreeWorkRatio)})
			}
			experiments.RenderTable(out, header, rows)
			if len(cells) > 0 {
				fmt.Fprintf(out, "\nbushy oracle wins (best tree strictly beats best zig-zag): %.3f of queries\n",
					cells[0].OracleBushyWins)
				fmt.Fprintf(out, "cache-aware bushy wins (exact planner, length-2 segments warm): %.3f of queries\n",
					cells[0].CacheBushyWins)
			}
			return writeCSV(csvDir, "plans.csv", func(f *os.File) error {
				return experiments.WritePlanCSV(f, cells)
			})
		case "correlation":
			cells, err := experiments.CorrelationSweep(opt, nil)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "Correlation sweep: label–degree coupling vs mean error rate (Moreno family, k=3)")
			header := []string{"coupling", "method", "beta", "mean err"}
			var rows [][]string
			for _, c := range cells {
				rows = append(rows, []string{fmt.Sprintf("%.2f", c.Coupling), c.Method,
					fmt.Sprintf("%d", c.Beta), fmt.Sprintf("%.4f", c.MeanErrorRate)})
			}
			experiments.RenderTable(out, header, rows)
			fmt.Fprintln(out, "\nsum-based advantage (best rival error / sum-based error; >1 = sum-based wins):")
			adv := experiments.SumBasedAdvantage(cells)
			for _, c := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
				if r, ok := adv[c]; ok {
					fmt.Fprintf(out, "  coupling %.2f: %.2fx\n", c, r)
				}
			}
			return writeCSV(csvDir, "correlation.csv", func(f *os.File) error {
				return experiments.WriteCorrelationCSV(f, cells)
			})
		case "bounds":
			cells, err := experiments.OrderingBounds(opt)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, "Bounds: paper orderings vs ideal, sum-L2 and product (Moreno, k=3, V-Optimal)")
			header := []string{"beta", "method", "mean err"}
			var rows [][]string
			for _, c := range cells {
				rows = append(rows, []string{fmt.Sprintf("%d", c.Beta), c.Method,
					fmt.Sprintf("%.4f", c.MeanErrorRate)})
			}
			experiments.RenderTable(out, header, rows)
			return writeCSV(csvDir, "bounds.csv", func(f *os.File) error {
				return experiments.WriteBoundsCSV(f, cells)
			})
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if exp != "all" {
		return runOne(exp)
	}
	for _, name := range []string{"tables12", "table3", "figure1", "table4", "figure2", "ablation", "bounds", "workload", "correlation", "plans", "profile"} {
		fmt.Fprintf(out, "\n================ %s ================\n", name)
		if err := runOne(name); err != nil {
			return err
		}
	}
	return nil
}
