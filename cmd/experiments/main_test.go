package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

func fastOptions() experiments.Options {
	return experiments.Options{
		Scale:      0.02,
		Seed:       1,
		TimingK:    3,
		AccuracyKs: []int{2},
		BetaDenoms: []int{8},
		Queries:    50,
		Repeats:    1,
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"tables12", "table3", "figure1", "table4", "ablation", "profile"} {
		if err := run(exp, fastOptions(), ""); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", fastOptions(), ""); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run("figure2", fastOptions(), dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV artifact")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	if err := run("all", fastOptions(), t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
