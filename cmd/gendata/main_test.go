package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func TestBuildNamedDataset(t *testing.T) {
	g, err := build("SNAP-ER", "", 0, 0, 0, 0, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 || g.NumLabels() != 6 {
		t.Fatalf("unexpected graph %d/%d", g.NumEdges(), g.NumLabels())
	}
}

func TestBuildCustomGenerators(t *testing.T) {
	for _, kind := range []string{"er", "ff", "pa"} {
		g, err := build("", kind, 100, 300, 3, 0, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumEdges() != 300 {
			t.Fatalf("%s: edges = %d, want 300", kind, g.NumEdges())
		}
	}
	// Zipf label model variant.
	g, err := build("", "er", 100, 300, 3, 1.5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	freq := g.LabelFrequencies()
	if freq[0] <= freq[2] {
		t.Fatalf("zipf labels should be skewed: %v", freq)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name, custom string
		scale        float64
	}{
		{"SNAP-ER", "er", 1}, // both specified
		{"nope", "", 1},      // unknown dataset
		{"", "warp", 1},      // unknown generator
		{"", "", 1},          // neither
		{"SNAP-ER", "", 9},   // bad scale
	}
	for _, c := range cases {
		if _, err := build(c.name, c.custom, 10, 20, 2, 0, c.scale, 1); err == nil {
			t.Errorf("build(%q, %q, scale=%v) should error", c.name, c.custom, c.scale)
		}
	}
}

func TestBuildFromSchemaFile(t *testing.T) {
	s := dataset.Schema{
		Vertices: 50,
		Edges:    120,
		Labels: []dataset.LabelSpec{
			{Name: "a", Proportion: 2, OutDist: dataset.DegreeZipfian, Skew: 1.1},
			{Name: "b", Proportion: 1},
		},
	}
	data, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "schema.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := buildFromSchema(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 120 || g.NumLabels() != 2 {
		t.Fatalf("schema graph %d/%d", g.NumEdges(), g.NumLabels())
	}
	freq := g.LabelFrequencies()
	if freq[0] != 80 || freq[1] != 40 {
		t.Fatalf("proportions not honoured: %v", freq)
	}
}

func TestBuildFromSchemaErrors(t *testing.T) {
	if _, err := buildFromSchema(filepath.Join(t.TempDir(), "missing.json"), 1); err == nil {
		t.Fatal("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildFromSchema(bad, 1); err == nil {
		t.Fatal("malformed JSON should error")
	}
	invalid := filepath.Join(t.TempDir(), "invalid.json")
	if err := os.WriteFile(invalid, []byte(`{"Vertices":0,"Edges":1,"Labels":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildFromSchema(invalid, 1); err == nil {
		t.Fatal("invalid schema should error")
	}
}
