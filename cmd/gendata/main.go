// Command gendata generates the paper's evaluation datasets (or custom
// synthetic graphs) as edge-list files.
//
// Usage:
//
//	gendata -dataset "Moreno health" -scale 0.1 -seed 1 -out moreno.txt
//	gendata -custom er -vertices 1000 -edges 5000 -labels 4 -out er.txt
//	gendata -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/graph"
)

func main() {
	name := flag.String("dataset", "", "Table 3 dataset name (see -list)")
	custom := flag.String("custom", "", "custom generator: er, ff, pa")
	schemaFile := flag.String("schema", "", "gMark-style JSON schema file (see -schema-example)")
	schemaExample := flag.Bool("schema-example", false, "print an example schema JSON and exit")
	vertices := flag.Int("vertices", 1000, "custom: vertex count")
	edges := flag.Int("edges", 5000, "custom: edge count")
	labels := flag.Int("labels", 4, "custom: label count")
	zipf := flag.Float64("zipf", 0, "custom: label Zipf skew (0 = uniform)")
	scale := flag.Float64("scale", 1.0, "dataset scale in (0,1]")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list built-in datasets and exit")
	flag.Parse()

	if *list {
		for _, spec := range dataset.Table3() {
			fmt.Printf("%-20s labels=%d vertices=%d edges=%d real=%v\n",
				spec.Name, spec.Labels, spec.Vertices, spec.Edges, spec.RealWorld)
		}
		return
	}
	if *schemaExample {
		printSchemaExample()
		return
	}

	var g *graph.Graph
	var err error
	if *schemaFile != "" {
		g, err = buildFromSchema(*schemaFile, *seed)
	} else {
		g, err = build(*name, *custom, *vertices, *edges, *labels, *zipf, *scale, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gendata:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteEdgeList(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gendata: wrote %d vertices, %d edges, %d labels\n",
		g.NumVertices(), g.NumEdges(), g.NumLabels())
}

// printSchemaExample writes a ready-to-edit schema file to stdout.
func printSchemaExample() {
	example := dataset.Schema{
		Vertices: 1000,
		Edges:    8000,
		Labels: []dataset.LabelSpec{
			{Name: "follows", Proportion: 0.6, OutDist: dataset.DegreeZipfian, InDist: dataset.DegreeZipfian, Skew: 1.2},
			{Name: "likes", Proportion: 0.3, OutDist: dataset.DegreeUniform, InDist: dataset.DegreeZipfian, Skew: 1.0},
			{Name: "blocks", Proportion: 0.1, OutDist: dataset.DegreeUniform, InDist: dataset.DegreeUniform},
		},
	}
	out, err := json.MarshalIndent(example, "", "  ")
	if err != nil {
		panic(err) // static example cannot fail to marshal
	}
	fmt.Println(string(out))
}

// buildFromSchema reads and materializes a JSON schema file.
func buildFromSchema(path string, seed int64) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s dataset.Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parsing schema %s: %v", path, err)
	}
	return dataset.GenerateSchema(s, seed)
}

func build(name, custom string, vertices, edges, labels int, zipf, scale float64, seed int64) (*graph.Graph, error) {
	if name != "" && custom != "" {
		return nil, fmt.Errorf("use either -dataset or -custom, not both")
	}
	if name != "" {
		for _, spec := range dataset.Table3() {
			if spec.Name == name {
				if scale <= 0 || scale > 1 {
					return nil, fmt.Errorf("scale %v out of (0,1]", scale)
				}
				return dataset.Generate(spec, scale, seed), nil
			}
		}
		return nil, fmt.Errorf("unknown dataset %q (try -list)", name)
	}
	var model dataset.LabelModel = dataset.UniformLabels{L: labels}
	if zipf > 0 {
		model = dataset.NewZipfLabels(labels, zipf)
	}
	switch custom {
	case "er":
		return dataset.ErdosRenyi(vertices, edges, model, seed), nil
	case "ff":
		return dataset.ForestFire(vertices, edges, 0.35, 0.32, model, seed), nil
	case "pa":
		return dataset.PreferentialAttachment(vertices, edges, model, seed), nil
	case "":
		return nil, fmt.Errorf("specify -dataset or -custom (or -list)")
	default:
		return nil, fmt.Errorf("unknown custom generator %q (er, ff, pa)", custom)
	}
}
